"""Virtual parallelism: communicator, decomposition, migration, halos."""

import numpy as np
import pytest

from repro.fem import StructuredMesh
from repro.mpm import advect_points, migrate_points, seed_points
from repro.mpm.migration import count_points_per_element, populate_empty_cells
from repro.parallel import (
    BlockDecomposition,
    VirtualComm,
    halo_exchange_plan,
    reduction_count,
)


class TestVirtualComm:
    def test_send_recv(self):
        comm = VirtualComm(3)
        comm.send(0, 2, np.arange(5))
        comm.send(1, 2, np.arange(3))
        msgs = comm.recv_all(2)
        assert [src for src, _ in msgs] == [0, 1]
        assert comm.pending() == 0

    def test_traffic_accounting(self):
        comm = VirtualComm(2)
        comm.send(0, 1, np.zeros(10))
        assert comm.stats.messages == 1
        assert comm.stats.bytes == 80
        comm.send(0, 1, "x", nbytes=1234)
        assert comm.stats.bytes == 80 + 1234

    def test_self_send_rejected(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            comm.send(1, 1, np.zeros(1))

    def test_rank_bounds(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, np.zeros(1))

    def test_allreduce(self):
        comm = VirtualComm(3)
        assert comm.allreduce([1.0, 2.0, 3.0], "sum") == 6.0
        assert comm.allreduce([1.0, 2.0, 3.0], "max") == 3.0
        assert comm.stats.reductions == 2


class TestDecomposition:
    def test_every_element_owned_once(self):
        mesh = StructuredMesh((5, 4, 3), order=2)
        d = BlockDecomposition(mesh, (2, 2, 1))
        counts = np.bincount(d.element_owner, minlength=d.nranks)
        assert counts.sum() == mesh.nel
        assert np.all(counts > 0)
        all_els = np.concatenate([d.elements_of(r) for r in range(d.nranks)])
        assert np.array_equal(np.sort(all_els), np.arange(mesh.nel))

    def test_subdomain_shapes_tile_mesh(self):
        mesh = StructuredMesh((5, 4, 3), order=2)
        d = BlockDecomposition(mesh, (2, 2, 3))
        total = sum(np.prod(d.subdomain_shape(r)) for r in range(d.nranks))
        assert total == mesh.nel

    def test_neighbors_symmetric(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        d = BlockDecomposition(mesh, (2, 2, 2))
        for r in range(d.nranks):
            for nb in d.neighbors(r):
                assert r in d.neighbors(nb)

    def test_corner_rank_has_seven_neighbors(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        d = BlockDecomposition(mesh, (2, 2, 2))
        assert len(d.neighbors(0)) == 7

    def test_invalid_rank_grid(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        with pytest.raises(ValueError):
            BlockDecomposition(mesh, (4, 1, 1))

    def test_owned_nodes_partition_lattice(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        d = BlockDecomposition(mesh, (2, 1, 2))
        assert d.owned_node_counts().sum() == mesh.nnodes

    def test_ghost_counts_positive_interior(self):
        mesh = StructuredMesh((6, 6, 6), order=2)
        d = BlockDecomposition(mesh, (3, 1, 1))
        # the middle rank has ghosts on two faces, the ends on one
        assert d.ghost_node_count(1) > d.ghost_node_count(0) > 0


class TestMigration:
    def _distribute(self, mesh, pts, decomp):
        out = []
        for r in range(decomp.nranks):
            mine = (pts.el >= 0) & (decomp.element_owner[pts.el] == r)
            out.append(pts.subset(np.flatnonzero(mine)))
        return out

    def test_conservation_and_ownership(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        decomp = BlockDecomposition(mesh, (2, 2, 1))
        comm = VirtualComm(decomp.nranks)
        pts = seed_points(mesh, 2, jitter=0.2, rng=np.random.default_rng(0))
        rank_points = self._distribute(mesh, pts, decomp)
        n0 = sum(p.n for p in rank_points)
        u = np.zeros(3 * mesh.nnodes)
        u[0::3] = 0.3  # push everything right
        for rp in rank_points:
            if rp.n:
                advect_points(mesh, u, rp, dt=1.0)
        rank_points, deleted = migrate_points(decomp, comm, rank_points)
        n1 = sum(p.n for p in rank_points)
        assert n1 + deleted == n0
        assert deleted > 0  # the rightmost column exits the domain
        for r, rp in enumerate(rank_points):
            if rp.n:
                assert np.all(decomp.element_owner[rp.el] == r)
        assert comm.stats.messages > 0
        assert comm.pending() == 0

    def test_no_motion_no_migration(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        decomp = BlockDecomposition(mesh, (2, 1, 1))
        comm = VirtualComm(decomp.nranks)
        pts = seed_points(mesh, 2)
        rank_points = self._distribute(mesh, pts, decomp)
        n0 = sum(p.n for p in rank_points)
        rank_points, deleted = migrate_points(decomp, comm, rank_points)
        assert deleted == 0
        assert sum(p.n for p in rank_points) == n0
        assert comm.stats.messages == 0

    def test_point_state_survives_migration(self):
        mesh = StructuredMesh((4, 2, 2), order=2)
        decomp = BlockDecomposition(mesh, (2, 1, 1))
        comm = VirtualComm(decomp.nranks)
        pts = seed_points(mesh, 2, jitter=0.1, rng=np.random.default_rng(1))
        pts.plastic_strain[:] = np.arange(pts.n, dtype=float)
        rank_points = self._distribute(mesh, pts, decomp)
        u = np.zeros(3 * mesh.nnodes)
        u[0::3] = 0.26  # move one subdomain over
        for rp in rank_points:
            advect_points(mesh, u, rp, dt=1.0)
        rank_points, _ = migrate_points(decomp, comm, rank_points)
        merged = np.concatenate([rp.plastic_strain for rp in rank_points])
        # strains are preserved (just reordered / truncated by outflow)
        assert np.all(np.isin(merged, np.arange(pts.n, dtype=float)))


class TestPopulationControl:
    def test_injects_into_empty_elements(self):
        mesh = StructuredMesh((3, 3, 3), order=2)
        pts = seed_points(mesh, 2)
        # wipe out one element's points
        victim = 13
        pts.remove(pts.el == victim)
        assert count_points_per_element(mesh, pts)[victim] == 0
        injected = populate_empty_cells(mesh, pts, min_per_element=1)
        assert injected["total"] > 0
        assert sum(injected["per_lithology"].values()) == injected["total"]
        assert count_points_per_element(mesh, pts)[victim] > 0

    def test_no_injection_when_populated(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        pts = seed_points(mesh, 2)
        assert populate_empty_cells(mesh, pts, min_per_element=1)["total"] == 0

    def test_injected_points_inherit_nearest_state(self):
        mesh = StructuredMesh((2, 1, 1), order=2)
        pts = seed_points(mesh, 2)
        pts.lithology[:] = 4
        pts.remove(pts.el == 1)
        populate_empty_cells(mesh, pts, min_per_element=1)
        assert np.all(pts.lithology == 4)


class TestHaloModel:
    def test_plan_scales_with_ranks(self):
        mesh = StructuredMesh((8, 8, 8), order=2)
        small = halo_exchange_plan(BlockDecomposition(mesh, (2, 1, 1)))
        large = halo_exchange_plan(BlockDecomposition(mesh, (2, 2, 2)))
        assert large[0] > small[0]  # more messages
        assert large[1] > small[1]  # more total bytes

    def test_reduction_count(self):
        assert reduction_count(10, "cg") == 20
        assert reduction_count(10, "gcr") == 30
        assert reduction_count(10, "chebyshev") == 0
