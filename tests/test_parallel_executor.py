"""Shared-memory parallel element-kernel engine: determinism, backends,
crash handling, and the wiring through operators, assembly, and multigrid."""

import os

import numpy as np
import pytest

from repro import obs
from repro.fem import StructuredMesh, GaussQuadrature, assembly
from repro.matfree import make_operator
from repro.parallel import (
    ExchangeStats,
    ParallelCSRMatVec,
    ParallelExecutor,
    WorkerCrash,
    make_executor,
    measured_exchange,
    partition_elements,
    partition_range,
    resolve_backend,
    resolve_workers,
)
from repro.parallel.halo import halo_exchange_plan
from repro.parallel.decomposition import BlockDecomposition

QUAD = GaussQuadrature.hex(3)
KINDS = ["asmb", "mf", "tensor", "tensor_c", "tensor_compiled"]
BACKENDS = ["thread", "process"]


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def small_setup(shape=(3, 3, 4), seed=7):
    rng = np.random.default_rng(seed)
    mesh = StructuredMesh(shape, order=2, extent=(1.0, 0.8, 1.2))
    eta = np.exp(rng.normal(scale=0.5, size=(mesh.nel, QUAD.npoints)))
    u = rng.standard_normal(3 * mesh.nnodes)
    return mesh, eta, u


class TestPartitioning:
    def test_partition_range_covers_and_is_contiguous(self):
        for n in (0, 1, 7, 100):
            for p in (1, 3, 8, 200):
                spans = partition_range(n, p)
                assert spans[0][0] == 0 and spans[-1][1] == n
                for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
                    assert e0 == s1

    def test_partition_elements_matches_block_decomposition(self):
        mesh = StructuredMesh((3, 4, 8), order=2)
        spans = partition_elements(mesh, 4)
        decomp = BlockDecomposition(mesh, (1, 1, 4))
        layer = mesh.shape[0] * mesh.shape[1]
        for k, (s, e) in enumerate(spans):
            assert s == layer * decomp.bz[k]
            assert e == layer * decomp.bz[k + 1]
        assert spans[0][0] == 0 and spans[-1][1] == mesh.nel

    def test_partition_elements_more_parts_than_layers(self):
        mesh = StructuredMesh((4, 4, 2), order=2)
        spans = partition_elements(mesh, 5)
        assert spans[0][0] == 0 and spans[-1][1] == mesh.nel
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 == s1


class TestResolution:
    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2  # explicit beats environment
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_resolve_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        assert resolve_backend(None) == "auto"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert resolve_backend(None) == "process"
        with pytest.raises(ValueError):
            resolve_backend("mpi")

    def test_make_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert make_executor(None, None) is None
        assert make_executor(1, "thread") is None
        ex = make_executor(2, "thread")
        assert isinstance(ex, ParallelExecutor) and ex.workers == 2
        assert make_executor(4, None, executor=ex) is ex
        ex.shutdown()

    def test_env_workers_activate_operator(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "thread")
        mesh, eta, u = small_setup()
        op = make_operator("tensor", mesh, eta, quad=QUAD)
        assert op.executor is not None and op.executor.workers == 2
        assert np.array_equal(op.apply(u), op.apply_serial(u))
        op.executor.shutdown()


class TestBitIdenticalOperators:
    """ISSUE acceptance: parallel == serial to machine precision, i.e.
    ``rtol=0`` -- the element partials are dot-reduction-free and reduced
    in task order, so equality is exact, not approximate."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_apply_matches_serial_exactly(self, kind, backend):
        mesh, eta, u = small_setup()
        op = make_operator(
            kind, mesh, eta, quad=QUAD, workers=3, parallel_backend=backend
        )
        y_par = op.apply(u)
        y_ser = op.apply_serial(u)
        assert np.array_equal(y_par, y_ser)  # rtol=0: bitwise
        op.executor.shutdown()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_assembled_matvec_matches_plain_spmv(self, backend):
        mesh, eta, u = small_setup()
        op = make_operator(
            "asmb", mesh, eta, quad=QUAD, workers=3, parallel_backend=backend
        )
        assert np.array_equal(op.apply(u), op.matrix @ u)
        op.executor.shutdown()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_assembly_identical(self, backend):
        mesh, eta, _ = small_setup()
        ex = ParallelExecutor(workers=3, backend=backend)
        A_ser = assembly.assemble_viscous(mesh, eta, QUAD)
        A_par = assembly.assemble_viscous(mesh, eta, QUAD, executor=ex)
        assert np.array_equal(A_ser.indptr, A_par.indptr)
        assert np.array_equal(A_ser.indices, A_par.indices)
        assert np.array_equal(A_ser.data, A_par.data)
        ex.shutdown()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_diagonal_close_to_serial(self, backend):
        # the diagonal scatter-adds span partials, so parallel-vs-plain
        # differs only by summation association (<= a few ulp)
        mesh, eta, _ = small_setup()
        ex = ParallelExecutor(workers=3, backend=backend)
        d_ser = assembly.viscous_diagonal(mesh, eta, QUAD)
        d_par = assembly.viscous_diagonal(mesh, eta, QUAD, executor=ex)
        assert np.allclose(d_ser, d_par, rtol=1e-14, atol=0)
        ex.shutdown()

    def test_csr_matvec_bit_identical(self, rng):
        import scipy.sparse as sp

        A = sp.random(300, 300, density=0.05, random_state=123, format="csr")
        u = rng.standard_normal(300)
        ex = ParallelExecutor(workers=4, backend="thread")
        mv = ParallelCSRMatVec(A, ex)
        assert np.array_equal(mv(u), A @ u)
        ex.shutdown()


class TestStateVersioning:
    @pytest.mark.parametrize("kind", ["tensor", "tensor_c", "asmb"])
    def test_mesh_deform_keeps_process_backend_exact(self, kind):
        mesh, eta, u = small_setup()
        op = make_operator(
            kind, mesh, eta, quad=QUAD, workers=2, parallel_backend="process"
        )
        op.apply(u)  # spawn the pool on the original geometry
        if kind == "asmb":
            # the assembled matrix is geometry-frozen; just re-apply
            assert np.array_equal(op.apply(u), op.apply_serial(u))
        else:
            mesh.deform(lambda c: c + 0.02 * np.sin(2 * np.pi * c[:, [1, 2, 0]]))
            y_par = op.apply(u)
            assert np.array_equal(y_par, op.apply_serial(u))
            assert op.executor.stats.respawns >= 1
        op.executor.shutdown()

    @pytest.mark.parametrize("kind", ["tensor", "tensor_c", "tensor_compiled"])
    def test_eta_mutation_keeps_process_backend_exact(self, kind):
        """Headline regression: in-place viscosity re-linearization must
        rebuild cached coefficients AND re-snapshot process workers.

        Before the ``(coords_version, eta_version)`` state contract this
        silently applied a stale operator: for the coefficient-caching
        kinds the cached ``_C`` kept the old viscosity everywhere, and for
        every kind the forked workers kept the old ``eta_q`` snapshot --
        so the parallel result diverged from serial (``tensor``) or both
        matched the *wrong* operator (``tensor_c``)."""
        mesh, eta, u = small_setup()
        op = make_operator(
            kind, mesh, eta.copy(), quad=QUAD, workers=2,
            parallel_backend="process",
        )
        op.apply(u)  # fork snapshot carries the original viscosity
        op.eta_q *= 1.7  # in-place re-linearization: no new array object
        y_par = op.apply(u)
        y_ser = op.apply_serial(u)
        assert np.array_equal(y_par, y_ser)  # rtol=0: bitwise
        # and both must reflect the NEW viscosity, not the cached one
        # (same workers so the span-partial reduction order matches bitwise)
        ref_op = make_operator(
            kind, mesh, eta * 1.7, quad=QUAD, workers=2,
            parallel_backend="process",
        )
        assert np.array_equal(y_ser, ref_op.apply_serial(u))
        ref_op.executor.shutdown()
        assert op.executor.stats.respawns >= 1
        op.executor.shutdown()

    def test_set_viscosity_respawns_process_pool(self):
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor_c", mesh, eta, quad=QUAD, workers=2,
            parallel_backend="process",
        )
        op.apply(u)
        op.set_viscosity(eta * 0.25)
        assert np.array_equal(op.apply(u), op.apply_serial(u))
        assert op.executor.stats.respawns >= 1
        op.executor.shutdown()


class _CrashKernel:
    """Kernel whose spans beyond the first kill the worker process."""

    _parallel_state_version = 0

    def partial(self, u, s, e):
        if s > 0:
            os._exit(13)
        return np.zeros(4)


class _RaisingKernel:
    _parallel_state_version = 0

    def partial(self, u, s, e):
        raise ValueError("bad coefficient block")


class TestFailureModes:
    def test_worker_crash_raises_workercrash(self):
        ex = ParallelExecutor(workers=2, backend="process")
        spans = [(0, 2), (2, 4)]
        with pytest.raises(WorkerCrash):
            ex.dispatch(_CrashKernel(), "partial", spans, np.zeros(4), out_len=4)
        # the engine recovers: next dispatch respawns and succeeds
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor", mesh, eta, quad=QUAD, workers=2,
            parallel_backend="process", executor=ex,
        )
        assert np.array_equal(op.apply(u), op.apply_serial(u))
        ex.shutdown()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kernel_exception_propagates_as_itself(self, backend):
        ex = ParallelExecutor(workers=2, backend=backend)
        with pytest.raises(ValueError, match="bad coefficient block"):
            ex.dispatch(
                _RaisingKernel(), "partial", [(0, 2), (2, 4)], np.zeros(4),
                out_len=4,
            )
        ex.shutdown()

    def test_dispatch_argument_validation(self):
        ex = ParallelExecutor(workers=2, backend="thread")
        with pytest.raises(ValueError, match="out_len"):
            ex.dispatch(_RaisingKernel(), "partial", [(0, 1)], np.zeros(2))
        with pytest.raises(ValueError, match="sizes"):
            ex.dispatch(
                _RaisingKernel(), "partial", [(0, 1), (1, 2)], np.zeros(2),
                mode="concat",
            )
        with pytest.raises(ValueError, match="mode"):
            ex.dispatch(
                _RaisingKernel(), "partial", [(0, 1)], np.zeros(2),
                out_len=2, mode="gather",
            )
        ex.shutdown()


class TestStatsAndObservability:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_accumulate(self, backend):
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor", mesh, eta, quad=QUAD, workers=3, parallel_backend=backend
        )
        for _ in range(3):
            op.apply(u)
        st = op.executor.stats
        assert st.dispatches == 3
        assert st.tasks == 3 * len(op._spans)
        assert st.bytes_in == 3 * u.nbytes
        assert st.bytes_out == 3 * len(op._spans) * 8 * op.ndof
        assert st.worker_busy_seconds > 0.0
        assert st.queue_wait_seconds >= 0.0
        assert st.reduce_seconds >= 0.0
        d = st.as_dict()
        assert d["dispatches"] == 3 and d["tasks"] == st.tasks
        op.executor.shutdown()

    def test_obs_events_emitted(self):
        obs.enable()
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor", mesh, eta, quad=QUAD, workers=2, parallel_backend="thread"
        )
        op.apply(u)
        names = {name for (_, name) in obs.registry.REGISTRY.events}
        assert "ParExecDispatch" in names
        assert "ParExecQueueWait" in names
        assert "ParExecWorkerBusy" in names
        assert "ParExecReduce" in names
        op.executor.shutdown()

    def test_measured_halo_exchange(self):
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor", mesh, eta, quad=QUAD, workers=2, parallel_backend="thread"
        )
        decomp = BlockDecomposition(mesh, (1, 1, 2))
        before = halo_exchange_plan(decomp, executor=op.executor)
        assert not before.measured  # no dispatch yet: analytic model
        op.apply(u)
        after = halo_exchange_plan(decomp, executor=op.executor)
        assert after.measured
        assert after.bytes_total == u.nbytes + 2 * 8 * op.ndof
        assert after.messages == 3  # one broadcast in, one partial per task
        # tuple compatibility with the historic return value
        msgs, total, per_rank = after
        assert (msgs, total) == (after.messages, after.bytes_total)
        assert measured_exchange(None) is None
        op.executor.shutdown()


class TestMultigridWiring:
    def test_gmg_parallel_stats_and_exactness(self):
        from repro.mg.coefficients import coefficient_hierarchy
        from repro.mg.gmg import GMGConfig, build_gmg
        from tests.conftest import free_slip_bc

        rng = np.random.default_rng(3)
        mesh = StructuredMesh((4, 4, 4), order=2)
        eta = np.exp(rng.normal(scale=0.5, size=(mesh.nel, QUAD.npoints)))
        meshes = mesh.hierarchy(2)[::-1]
        etas = coefficient_hierarchy(meshes, eta, QUAD)
        # workers=1 pins the serial reference even under $REPRO_WORKERS
        mg_s, _ = build_gmg(meshes, etas, free_slip_bc,
                            GMGConfig(levels=2, coarse_solver="lu", workers=1))
        mg_p, _ = build_gmg(meshes, etas, free_slip_bc,
                            GMGConfig(levels=2, coarse_solver="lu",
                                      workers=2, parallel_backend="thread"))
        assert mg_s.parallel_stats() is None
        b = rng.standard_normal(3 * mesh.nnodes)
        b[free_slip_bc(mesh).mask] = 0.0
        x_s = mg_s(b)
        x_p = mg_p(b)
        # levels share one pool; dispatches cover smoother + residual applies
        stats = mg_p.parallel_stats()
        assert stats is not None
        assert stats["executors"] == 1 and stats["workers"] == 2
        assert stats["dispatches"] > 0
        # same cycle, same operators: agreement to rounding (the Chebyshev
        # diagonal is assembled with a different chunking than the serial run)
        assert np.allclose(x_s, x_p, rtol=1e-12, atol=1e-14)
        for lvl in mg_p.levels:
            if lvl.executor is not None:
                lvl.executor.shutdown()
                break
