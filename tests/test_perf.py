"""Performance model: Table I counts (paper's exact numbers) and roofline."""

import numpy as np
import pytest

from repro.perf import (
    EDISON,
    OPERATOR_COUNTS,
    PAPER_COUNTS,
    MachineModel,
    apply_time_per_element,
    efficiency_metrics,
    modeled_apply_time,
    modeled_gflops,
    modeled_solve_time,
    table1_counts,
    table1_model,
)


class TestPaperCounts:
    """Pin the per-element numbers of Table I / SS III-D exactly."""

    def test_assembled(self):
        c = PAPER_COUNTS["asmb"]
        assert c.flops == 9216
        assert c.bytes_perfect_cache == 37248

    def test_matrix_free(self):
        c = PAPER_COUNTS["mf"]
        assert c.flops == 53622
        assert c.bytes_perfect_cache == 1008
        assert c.bytes_pessimal_cache == 2376

    def test_tensor(self):
        c = PAPER_COUNTS["tensor"]
        assert c.flops == 15228
        assert c.bytes_perfect_cache == 1008

    def test_tensor_c(self):
        c = PAPER_COUNTS["tensor_c"]
        assert c.flops == 14214
        assert c.bytes_perfect_cache == 4920
        assert c.bytes_pessimal_cache == 5832

    def test_arithmetic_intensity_range(self):
        """SS III-D: MF kernel intensity between 22.5 (pessimal) and 53
        (perfect) flops/byte."""
        c = PAPER_COUNTS["mf"]
        assert c.intensity_pessimal == pytest.approx(22.5, abs=0.2)
        assert c.intensity_perfect == pytest.approx(53.2, abs=0.2)

    def test_tensor_flop_reduction_factor(self):
        """Tensor kernel does ~3.5x fewer flops than the dense MF kernel."""
        ratio = PAPER_COUNTS["mf"].flops / PAPER_COUNTS["tensor"].flops
        assert 3.0 < ratio < 4.0

    def test_table_order(self):
        names = [c.name for c in table1_counts()]
        assert names == ["asmb", "mf", "tensor", "tensor_c"]


class TestImplementationCounts:
    """The implementation-true table diverges from the paper only where the
    code does (the packed Tensor-C apply); see repro.perf.counts."""

    def test_shared_rows_match_paper(self):
        for kind in ("asmb", "mf", "tensor"):
            assert OPERATOR_COUNTS[kind] == PAPER_COUNTS[kind]

    def test_tensor_c_streams_packed_storage(self):
        c = OPERATOR_COUNTS["tensor_c"]
        # 16 packed values/point + int64 gather indices + 8/27-node vectors
        assert c.bytes_perfect_cache == 8 * (2 * 8 * 3) + 8 * 16 * 27 + 8 * 27
        assert c.bytes_pessimal_cache == 8 * (2 * 27 * 3) + 8 * 16 * 27 + 8 * 27
        # two factored gradient sweeps + the 153-flop pointwise contraction
        assert c.flops == 2 * 13122 + 27 * 153 == 30375

    def test_compiled_shares_tensor_c_arithmetic(self):
        c = OPERATOR_COUNTS["tensor_compiled"]
        ref = OPERATOR_COUNTS["tensor_c"]
        assert (c.flops, c.bytes_perfect_cache, c.bytes_pessimal_cache) == (
            ref.flops, ref.bytes_perfect_cache, ref.bytes_pessimal_cache
        )

    def test_packed_storage_cuts_coefficient_memory(self):
        """The 16-value packing moves the ~4x memory cut the docstring
        promised: dense rank-4 stored 81 doubles/point."""
        from repro.perf.roofline import memory_bytes

        dense_coeff = 27 * 81 * 8
        packed = memory_bytes("tensor_c", nel=1000, nnodes=1)
        dense = packed - 1000 * 27 * 16 * 8 + 1000 * dense_coeff
        assert dense / packed > 4.0


class TestMachineModel:
    def test_edison_peak(self):
        """8 Edison nodes = 3686.4 GF/s peak (the paper's Table I caption)."""
        assert EDISON.peak_gflops(8) == pytest.approx(3686.4)

    def test_bandwidth_per_core_contention(self):
        assert EDISON.stream_gbytes_per_core == pytest.approx(89.0 / 24)


class TestRoofline:
    def test_assembled_is_bandwidth_bound(self):
        """The assembled SpMV time must equal the memory-streaming time."""
        t = apply_time_per_element("asmb", EDISON)
        c = OPERATOR_COUNTS["asmb"]
        bw = EDISON.stream_gbytes_per_core * EDISON.spmv_stream_fraction
        assert t == pytest.approx(c.bytes_perfect_cache / (bw * 1e9))

    def test_tensor_is_compute_bound(self):
        """The tensor kernel's time is set by flops, not bytes."""
        t = apply_time_per_element("tensor", EDISON)
        c = OPERATOR_COUNTS["tensor"]
        flop_rate = EDISON.peak_gflops_per_core * EDISON.mf_flop_fraction
        assert t == pytest.approx(c.flops / (flop_rate * 1e9))

    def test_modeled_ordering_matches_paper(self):
        """Modeled apply times reproduce SS IV-B's ordering: matrix-free is
        uniformly faster than assembled, tensor uniformly faster than
        matrix-free."""
        times = {k: modeled_apply_time(k, 64**3, 192) for k in OPERATOR_COUNTS}
        assert times["tensor"] < times["mf"] < times["asmb"]

    def test_paper_speedup_band(self):
        """Tensor vs assembled modeled speedup for operator application is
        order-of-magnitude-ish, consistent with the paper's ~2.7x solver
        and larger operator-level gains."""
        t_asmb = modeled_apply_time("asmb", 64**3, 192)
        t_tens = modeled_apply_time("tensor", 64**3, 192)
        assert 1.5 < t_asmb / t_tens < 15.0

    def test_gflops_accounting(self):
        t = modeled_apply_time("tensor", 1000, 1)
        gf = modeled_gflops("tensor", 1000, t)
        assert gf == pytest.approx(
            EDISON.peak_gflops_per_core * EDISON.mf_flop_fraction
        )

    def test_table1_model_rows(self):
        rows = table1_model()
        assert len(rows) == 4
        by_op = {r["operator"]: r for r in rows}
        assert by_op["tensor"]["time_ms"] < by_op["asmb"]["time_ms"]
        # mf achieves the highest GF/s but not the lowest time (SS IV-B)
        assert by_op["mf"]["gflops"] >= by_op["tensor"]["gflops"]

    def test_solve_time_scales_with_iterations(self):
        t1 = modeled_solve_time("tensor", 10**5, 192, iterations=50)
        t2 = modeled_solve_time("tensor", 10**5, 192, iterations=100)
        assert t2 == pytest.approx(2 * t1)

    def test_latency_term_hurts_small_subdomains(self):
        """Strong scaling saturates: at tiny elements/core the reduction
        latency dominates -- the communication threshold of Table III."""
        nel = 32**3
        t_big = modeled_solve_time("tensor", nel, 192, iterations=100)
        t_small = modeled_solve_time("tensor", nel, 48 * 1024, iterations=100)
        speedup = t_big / t_small
        assert speedup < (48 * 1024) / 192  # far from ideal

    def test_efficiency_metrics(self):
        m = efficiency_metrics(1000, 10, 2.0, flops_total=4e9)
        assert m["elements_per_core_per_s"] == pytest.approx(50.0)
        assert m["gflops"] == pytest.approx(2.0)
        assert m["gflops_per_core"] == pytest.approx(0.2)
