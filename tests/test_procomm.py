"""Real multi-process communicator vs. the virtual oracle.

The contract under test: every collective is deadline-bounded (typed
``CommTimeout`` instead of a hang), rank death is detected and typed
(``RankFailure``), recovery resumes from the last cohort checkpoint, and
the rank-decomposed solve is **bit-identical** to the single-process
:class:`~repro.parallel.comm.VirtualComm` oracle -- clean and across an
injected mid-solve rank kill.
"""

import contextlib
import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics
from repro.parallel import (
    BlockDecomposition,
    CommTimeout,
    ProcessComm,
    ProcommConfig,
    ProcommEngine,
    RankFailure,
    VirtualComm,
    VirtualRankEngine,
    halo_exchange_plan,
    run_sinker_distributed,
    tree_reduce,
    validate_decomposition_compat,
)
from repro.parallel.procomm import span_dot
from repro.resilience.inject import FaultInjector


@contextlib.contextmanager
def procomm(size, **cfg):
    comm = ProcessComm(size, config=ProcommConfig(**cfg) if cfg else None)
    try:
        yield comm
    finally:
        comm.close()


# --------------------------------------------------------------------- #
# ordered reduction: the fixed tree is the bitwise contract
# --------------------------------------------------------------------- #
class TestTreeReduce:
    def test_matches_explicit_pairing(self):
        # the documented shape: adjacent pairs, then pairs of pairs
        v = [0.1, 0.2, 0.3, 0.4]
        assert tree_reduce(v, "sum") == ((0.1 + 0.2) + (0.3 + 0.4))

    def test_depends_only_on_rank_count(self):
        rng = np.random.default_rng(7)
        for n in range(1, 9):
            vals = list(rng.standard_normal(n) * 10.0 ** rng.integers(
                -8, 8, size=n))
            assert tree_reduce(vals, "sum") == tree_reduce(list(vals), "sum")

    def test_differs_from_left_fold(self):
        # the reason the tree is pinned: naive arrival-order summation
        # rounds differently, so "any order that finishes" is not
        # reproducible
        rng = np.random.default_rng(3)
        diverged = False
        for _ in range(50):
            vals = list(rng.standard_normal(7) * 10.0 ** rng.integers(
                -10, 10, size=7))
            fold = 0.0
            for v in vals:
                fold += v
            diverged |= tree_reduce(vals, "sum") != fold
        assert diverged


# --------------------------------------------------------------------- #
# transport basics against the oracle
# --------------------------------------------------------------------- #
class TestProcessComm:
    def test_ping_identifies_ranks(self):
        with procomm(3) as comm:
            for r in range(3):
                assert comm.call(r, "ping")["rank"] == r

    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_allreduce_bitwise_matches_oracle(self, size):
        # satellite contract: allreduce is bitwise-stable for ANY rank
        # count, and identical between the real transport and the oracle
        rng = np.random.default_rng(size)
        vals = list(rng.standard_normal(size) * 10.0 ** rng.integers(
            -6, 6, size=size))
        expected = tree_reduce(list(vals), "sum")
        with procomm(size) as comm:
            assert comm.allreduce(list(vals), "sum") == expected
            assert comm.allreduce(list(vals), "max") == tree_reduce(
                list(vals), "max")
        assert VirtualComm(size).allreduce(list(vals), "sum") == expected

    def test_bcast_and_barrier(self):
        with procomm(2) as comm:
            assert comm.bcast({"a": [1, 2]}, root=0) == {"a": [1, 2]}
            comm.barrier()  # must simply not hang

    def test_send_recv_roundtrip(self):
        with procomm(3) as comm:
            payload = np.arange(6, dtype=np.float64)
            comm.send(0, 2, payload)
            comm.send(1, 2, {"tag": 9})
            assert comm.pending() == 2
            msgs = comm.recv_all(2)
            assert [src for src, _ in msgs] == [0, 1]
            np.testing.assert_array_equal(msgs[0][1], payload)
            assert msgs[1][1] == {"tag": 9}
            assert comm.pending() == 0

    def test_stats_count_traffic(self):
        with procomm(2) as comm:
            comm.send(0, 1, np.zeros(10))
            comm.recv_all(1)
            comm.allreduce([1.0, 2.0], "sum")
            assert comm.stats.messages == 1  # sends count; delivery doesn't
            assert comm.stats.reductions == 1
            assert comm.stats.bytes >= 80


# --------------------------------------------------------------------- #
# fault detection: typed, bounded, recoverable
# --------------------------------------------------------------------- #
class TestTransportFaults:
    def test_rank_death_is_typed(self):
        with procomm(2) as comm:
            comm.inject_fault(1, "kill", at=1, exit_code=42)
            with pytest.raises(RankFailure) as err:
                comm.barrier()
            assert err.value.rank == 1
            assert err.value.returncode == 42
            assert comm.stats.rank_failures >= 1

    def test_recover_restores_collectives(self, tmp_path):
        with procomm(2) as comm:
            comm.inject_fault(
                1, "kill", at=1, sentinel=str(tmp_path / "once"))
            with pytest.raises(RankFailure):
                comm.barrier()
            comm.recover()
            # sentinel claimed: the re-armed fault must not re-fire
            assert comm.allreduce([1.0, 2.0], "sum") == 3.0
            assert comm.stats.respawns >= 1

    def test_unfired_fault_survives_respawn(self, tmp_path):
        # without a sentinel the armed fault is re-applied to every
        # fresh cohort, so it fires again after an unrelated respawn
        with procomm(2) as comm:
            comm.inject_fault(1, "kill", at=1)
            with pytest.raises(RankFailure):
                comm.barrier()
            comm.recover()
            with pytest.raises(RankFailure):
                comm.barrier()
            comm.recover()
            # clear_faults is a control op: it disarms the re-armed kill
            # before any work op can trigger it
            comm.clear_faults()
            comm.barrier()

    def test_stall_hits_deadline_not_hang(self):
        # the stalled rank keeps heartbeating (dedicated thread), so this
        # exercises the per-op deadline: typed CommTimeout, bounded wall
        with procomm(2, op_timeout=1.5, heartbeat_timeout=30.0) as comm:
            comm.inject_fault(1, "stall", seconds=60.0, at=1)
            t0 = time.perf_counter()
            with pytest.raises(CommTimeout) as err:
                comm.barrier()
            assert time.perf_counter() - t0 < 10.0
            assert err.value.kind == "deadline"
            assert err.value.rank == 1
            comm.shutdown(kill=True)

    def test_drop_message_drops_exactly_one(self):
        with procomm(2) as comm:
            comm.inject_fault(1, "drop_message")
            comm.send(0, 1, "lost")
            comm.send(0, 1, "kept")
            msgs = comm.recv_all(1)
            assert [p for _, p in msgs] == ["kept"]
            comm.clear_faults()

    def test_injector_delegation(self, tmp_path):
        # the resilience layer's transport faults are thin wrappers over
        # comm.inject_fault -- same arming, same observation channel
        injector = FaultInjector()
        with procomm(2) as comm:
            injector.drop_message(comm, 1)
            comm.send(0, 1, "x")
            assert comm.recv_all(1) == []
        with procomm(2) as comm:
            injector.kill_rank(comm, 0, at=1,
                               sentinel=str(tmp_path / "k"))
            with pytest.raises(RankFailure):
                comm.allreduce([1.0, 1.0], "sum")


# --------------------------------------------------------------------- #
# rank engines: real transport vs inline oracle
# --------------------------------------------------------------------- #
class TestRankEngines:
    def test_dot_bitwise_parity(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(1001)
        y = rng.standard_normal(1001)
        oracle = VirtualRankEngine(size=2)
        expected = oracle.dot(x, y)
        with procomm(2) as comm:
            engine = ProcommEngine(comm)
            assert engine.dot(x, y) == expected
        # both equal the tree over the shared span kernel
        from repro.parallel.executor import partition_range

        parts = [span_dot(x, y, s, e) for s, e in partition_range(1001, 2)]
        assert expected == tree_reduce(parts, "sum")
        oracle.shutdown()

    def test_dot_stats_parity(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        oracle = VirtualRankEngine(size=2)
        oracle.dot(x, y)
        with procomm(2) as comm:
            engine = ProcommEngine(comm)
            engine.dot(x, y)
            real = comm.stats
            assert real.messages == oracle.comm.stats.messages
            assert real.bytes == oracle.comm.stats.bytes
            assert real.reductions == oracle.comm.stats.reductions
        oracle.shutdown()

    def test_cg_reductions_route_through_engine(self):
        # use_dot must steer every CG inner product through the fixed
        # tree; oracle and real transport land on the same iterates
        from repro.solvers.krylov import cg, use_dot

        rng = np.random.default_rng(5)
        A = rng.standard_normal((40, 40))
        A = A @ A.T + 40 * np.eye(40)
        b = rng.standard_normal(40)

        def apply_a(v):
            return A @ v

        oracle = VirtualRankEngine(size=2)
        with use_dot(oracle.dot):
            res_oracle = cg(apply_a, b, rtol=1e-10, maxiter=100)
        with procomm(2) as comm:
            engine = ProcommEngine(comm)
            with use_dot(engine.dot):
                res_real = cg(apply_a, b, rtol=1e-10, maxiter=100)
        assert res_oracle.converged and res_real.converged
        np.testing.assert_array_equal(res_oracle.x, res_real.x)
        assert res_oracle.iterations == res_real.iterations
        oracle.shutdown()


# --------------------------------------------------------------------- #
# halo-plan validation + comm gauges (satellites)
# --------------------------------------------------------------------- #
class TestHaloValidation:
    def test_mismatch_names_both_shapes(self):
        from repro.fem import StructuredMesh

        a = BlockDecomposition(StructuredMesh((4, 4, 4), order=2), (1, 1, 2))
        b = BlockDecomposition(StructuredMesh((4, 4, 2), order=2), (1, 1, 2))
        with pytest.raises(ValueError) as err:
            validate_decomposition_compat(a, b)
        assert "(4, 4, 4)" in str(err.value)
        assert "(4, 4, 2)" in str(err.value)
        with pytest.raises(ValueError):
            halo_exchange_plan(a, peer=b)

    def test_compatible_peer_accepted(self):
        from repro.fem import StructuredMesh

        mesh = StructuredMesh((4, 4, 4), order=2)
        a = BlockDecomposition(mesh, (1, 1, 2))
        plan = halo_exchange_plan(a, peer=BlockDecomposition(mesh, (1, 1, 2)))
        assert plan.messages > 0


class TestCommGauges:
    def test_comm_stats_ride_in_step_rows(self):
        obs.reset()
        obs.enable()
        try:
            comm = VirtualComm(2)
            comm.allreduce([1.0, 2.0], "sum")
            comm.send(0, 1, np.zeros(8))
            row = metrics.commit_step(0)
            assert row["comm.reductions"] == 1.0
            assert row["comm.messages"] == 1.0
            assert row["comm.ranks"] >= 2.0
            assert metrics.export()["comms"]["reductions"] == 1
        finally:
            obs.reset()

    def test_comm_spans_carry_their_own_category(self):
        from repro.obs import timeline as tl

        obs.reset()
        obs.enable()
        t = tl.arm(capacity=64)
        try:
            engine = VirtualRankEngine(size=2)
            rng = np.random.default_rng(0)
            engine.dot(rng.standard_normal(32), rng.standard_normal(32))
            cats = {(s["name"], s["cat"]) for s in t.spans()}
            # "comm" is its own Perfetto track, distinct from kernels
            assert ("CommDot", "comm") in cats
        finally:
            tl.disarm()
            obs.reset()


# --------------------------------------------------------------------- #
# cohort checkpoint: collective-consistent or refused
# --------------------------------------------------------------------- #
class TestCohortCheckpoint:
    @pytest.fixture(scope="class")
    def sim(self):
        from repro.sim.sinker import SinkerConfig, make_sinker

        return make_sinker(SinkerConfig(
            shape=(4, 4, 4), n_spheres=1, radius=0.2, points_per_dim=2,
            seed=3))

    def test_refuses_undelivered_mail(self, sim, tmp_path):
        from repro.sim.checkpoint import cohort_checkpoint

        comm = VirtualComm(2)
        comm.send(0, 1, "in flight")
        with pytest.raises(RuntimeError, match="undelivered"):
            cohort_checkpoint(str(tmp_path / "ck"), sim, comm)
        comm.recv_all(1)
        path = cohort_checkpoint(str(tmp_path / "ck"), sim, comm)
        assert os.path.exists(path)

    def test_dead_rank_detected_before_write(self, sim, tmp_path):
        from repro.sim.checkpoint import cohort_checkpoint

        with procomm(2) as comm:
            comm.inject_fault(1, "kill", at=1)
            with pytest.raises(RankFailure):
                cohort_checkpoint(str(tmp_path / "dead"), sim, comm)
        assert not os.path.exists(str(tmp_path / "dead") + ".npz")

    def test_save_checkpoint_method_delegates(self, sim, tmp_path):
        sim.comm = VirtualComm(2)
        path = sim.save_checkpoint(str(tmp_path / "via_sim"))
        assert os.path.exists(path)
        sim.comm = None


# --------------------------------------------------------------------- #
# end to end: the bit-exactness contract, clean and through a kill
# --------------------------------------------------------------------- #
class TestDistributedSolve:
    @pytest.fixture(scope="class")
    def oracle(self):
        return run_sinker_distributed(ranks=2, nsteps=2, oracle=True)

    def test_clean_run_bit_identical_to_oracle(self, oracle):
        out = run_sinker_distributed(ranks=2, nsteps=2)
        assert out["digest"] == oracle["digest"]
        assert out["recoveries"] == 0
        # the comm accounting is the perf layer's scale model: the real
        # transport must report exactly what the oracle modeled
        for key in ("messages", "bytes", "reductions"):
            assert out["comm"][key] == oracle["comm"][key]
        assert out["engine"]["dispatches"] == oracle["engine"]["dispatches"]
        assert out["halo"]["measured"]
        mig = out["migration"]
        assert mig["points_after"] == mig["points_before"]
        assert mig["misplaced"] >= 1

    def test_kill_recovers_from_checkpoint_bit_exact(self, oracle, tmp_path):
        out = run_sinker_distributed(
            ranks=2, nsteps=2,
            faults=[{"rank": 1, "kind": "kill", "at": 3, "after_step": 1,
                     "sentinel": str(tmp_path / "kill")}],
            checkpoint_dir=str(tmp_path),
        )
        assert out["recoveries"] == 1
        assert out["events"][0]["error"] == "RankFailure"
        # after_step=1 pins the death into step 2, so step 1's cohort
        # checkpoint existed and recovery took the resume path
        assert out["events"][0]["step"] == 1
        assert out["digest"] == oracle["digest"]

    def test_oracle_digest_is_rank_count_sensitive(self, oracle):
        # documents WHY digests are compared at equal rank counts: the
        # fixed reduction tree depends on the partition
        other = run_sinker_distributed(ranks=3, nsteps=2, oracle=True)
        assert other["digest"] != oracle["digest"]


# --------------------------------------------------------------------- #
# serve integration: rank grants + graceful shutdown (satellites)
# --------------------------------------------------------------------- #
class TestServeIntegration:
    def test_jobspec_ranks_wire_roundtrip_and_identity(self):
        from repro.serve.jobs import JobSpec

        spec = JobSpec(name="j", scenario="sinker", scenario_config={},
                       sim_config={}, nsteps=1, dt=0.1, ranks=4)
        again = JobSpec.from_wire(spec.to_wire())
        assert again.ranks == 4
        plain = JobSpec(name="j", scenario="sinker", scenario_config={},
                        sim_config={}, nsteps=1, dt=0.1)
        # a scheduling hint must not rename the result cache
        assert spec.config_hash() == plain.config_hash()

    def test_worker_ranks_run_bit_identical_to_oracle(
            self, tmp_path, capsys, monkeypatch):
        from repro.parallel.executor import use_executor
        from repro.serve import worker
        from repro.serve.jobs import JobSpec
        from repro.serve.store import state_digest
        from repro.solvers.krylov import use_dot

        spec = JobSpec(
            name="ranked", scenario="sinker",
            scenario_config={"shape": [4, 4, 4], "n_spheres": 1,
                             "radius": 0.2, "delta_eta": 10.0,
                             "points_per_dim": 2},
            sim_config={"stokes": {"mg_levels": 2, "coarse_solver": "lu"}},
            nsteps=2, dt=0.05, seed=1)
        job = tmp_path / "job.json"
        job.write_text(json.dumps({
            "spec": spec.to_wire(),
            "serve": {"store_dir": str(tmp_path), "checkpoint_every": 0,
                      "resume": False},
        }))

        monkeypatch.setenv("REPRO_PROCOMM_RANKS", "2")
        assert worker.run_job(str(job)) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        result = next(e for e in events if e["event"] == "result")
        assert result["ranks"] == 2

        # inline oracle reference: same spec under the virtual engine
        sim = worker.build_simulation(spec)
        engine = VirtualRankEngine(size=2)
        with use_executor(engine), use_dot(engine.dot):
            for _ in range(2):
                sim.step(spec.dt)
        assert result["digest"] == state_digest(sim)
        engine.shutdown()

    def test_sigterm_flushes_checkpoint_and_resume_completes(self, tmp_path):
        from repro.serve.jobs import JobSpec
        from repro.serve.scheduler import ServeConfig, run_battery

        spec = JobSpec(
            name="graceful", scenario="sinker",
            scenario_config={"shape": [4, 4, 4], "n_spheres": 1,
                             "radius": 0.2, "delta_eta": 10.0,
                             "points_per_dim": 2},
            sim_config={"stokes": {"mg_levels": 2, "coarse_solver": "lu"}},
            nsteps=3, dt=0.05, seed=1,
            faults={"hang": {"after_step": 2, "seconds": 3600.0}})
        report = run_battery([spec], ServeConfig(
            max_jobs=1, step_timeout=5.0, startup_timeout=120.0,
            term_grace=10.0, checkpoint_every=0, max_retries=2,
            store_dir=str(tmp_path)))
        rec = report.record("graceful")
        first = rec.attempts[0]
        assert first["outcome"] == "hang"
        assert first["graceful"] is True
        # the hang fires inside step 2 (its end-of-step listener), so the
        # last *returned* step is 1 -- and with checkpoint_every=0 the
        # SIGTERM flush is the ONLY possible checkpoint source, so
        # resuming from step 1 proves the grace period worked
        assert first["flushed_step"] == 1
        assert rec.state.name == "DONE"
        assert rec.result["steps"] == 3
        assert rec.result["resumed_from"] == 1
