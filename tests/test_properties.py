"""Property-based tests (hypothesis) on the core invariants.

These pin structural properties that must hold for *any* admissible input:
partition of unity, convexity of the MPM projection, roundtrips of the
inverse isoparametric map, symmetry/definiteness of operators, BC
idempotence, strength-graph symmetry, and rheology positivity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fem import StructuredMesh, GaussQuadrature, DirichletBC
from repro.fem.basis import q1_basis, q2_basis
from repro.fem.geometry import invert_3x3
from repro.matfree import make_operator
from repro.mpm.location import invert_map

QUAD = GaussQuadrature.hex(3)

settings.register_profile(
    "repro", deadline=None, max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

unit_points = hnp.arrays(
    np.float64, st.tuples(st.integers(1, 8), st.just(3)),
    elements=st.floats(-1.0, 1.0, allow_nan=False),
)


class TestBasisProperties:
    @given(pts=unit_points)
    def test_q2_partition_of_unity(self, pts):
        N = q2_basis().eval(pts)
        assert np.allclose(N.sum(axis=1), 1.0, atol=1e-10)
        dN = q2_basis().grad(pts)
        assert np.allclose(dN.sum(axis=1), 0.0, atol=1e-9)

    @given(pts=unit_points)
    def test_q1_values_bounded(self, pts):
        """Trilinear basis values are in [0, 1] inside the element."""
        N = q1_basis().eval(pts)
        assert N.min() >= -1e-12
        assert N.max() <= 1.0 + 1e-12


class TestGeometryProperties:
    @given(
        A=hnp.arrays(np.float64, (4, 3, 3),
                     elements=st.floats(-2.0, 2.0, allow_nan=False))
    )
    def test_invert_3x3_roundtrip(self, A):
        A = A + 4.0 * np.eye(3)  # keep well conditioned
        Ainv, det = invert_3x3(A)
        assert np.allclose(det, np.linalg.det(A), rtol=1e-9, atol=1e-9)
        eye = np.einsum("nij,njk->nik", A, Ainv)
        assert np.allclose(eye, np.eye(3), atol=1e-8)

    @given(
        amp=st.floats(0.0, 0.05),
        xi=hnp.arrays(np.float64, (6, 3),
                      elements=st.floats(-0.9, 0.9, allow_nan=False)),
    )
    def test_inverse_map_roundtrip(self, amp, xi):
        mesh = StructuredMesh((2, 2, 2), order=2)
        if amp > 0:
            mesh.deform(lambda c: c + amp * np.sin(2 * np.pi * c[:, [1, 2, 0]]))
        els = np.arange(6) % mesh.nel
        N = mesh.basis.eval(xi)
        x = np.einsum("pa,pac->pc", N, mesh.coords[mesh.connectivity[els]])
        xi_back = invert_map(mesh, els, x)
        assert np.abs(xi_back - xi).max() < 1e-8


class TestProjectionProperties:
    @given(
        vals=hnp.arrays(np.float64, (64,),
                        elements=st.floats(-10.0, 10.0, allow_nan=False)),
        seed=st.integers(0, 1000),
    )
    def test_projection_within_bounds(self, vals, seed):
        """The local L2 reconstruction (Eq. 12) is a convex combination."""
        from repro.mpm import seed_points, project_to_quadrature

        mesh = StructuredMesh((2, 2, 2), order=2)
        pts = seed_points(mesh, 2, jitter=0.3, rng=np.random.default_rng(seed))
        fq = project_to_quadrature(mesh, pts.el, pts.xi, vals, QUAD)
        assert fq.min() >= vals.min() - 1e-9
        assert fq.max() <= vals.max() + 1e-9


class TestOperatorProperties:
    @given(
        logeta=st.floats(-4.0, 4.0),
        seed=st.integers(0, 100),
    )
    def test_operator_psd_and_symmetric(self, logeta, seed):
        rng = np.random.default_rng(seed)
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta = np.full((mesh.nel, 27), 10.0**logeta)
        op = make_operator("tensor", mesh, eta)
        u = rng.standard_normal(3 * mesh.nnodes)
        v = rng.standard_normal(3 * mesh.nnodes)
        Au = op(u)
        assert u @ Au >= -1e-8 * np.abs(u @ Au)  # PSD
        assert Au @ v == pytest.approx(op(v) @ u, rel=1e-8, abs=1e-10)

    @given(seed=st.integers(0, 100))
    def test_all_kernels_agree_random_viscosity(self, seed):
        rng = np.random.default_rng(seed)
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta = np.exp(rng.uniform(-3, 3, size=(mesh.nel, 27)))
        u = rng.standard_normal(3 * mesh.nnodes)
        ys = [make_operator(k, mesh, eta)(u)
              for k in ("asmb", "mf", "tensor", "tensor_c")]
        scale = np.abs(ys[0]).max()
        for y in ys[1:]:
            assert np.abs(y - ys[0]).max() < 1e-10 * scale


class TestBCProperties:
    @given(
        seed=st.integers(0, 1000),
        value=st.floats(-5.0, 5.0, allow_nan=False),
    )
    def test_wrap_apply_idempotent_on_bc_rows(self, seed, value):
        rng = np.random.default_rng(seed)
        n = 30
        bc = DirichletBC(n)
        dofs = rng.choice(n, size=5, replace=False)
        bc.add(dofs, value).finalize()
        wrapped = bc.wrap_apply(lambda v: 2.0 * v)
        u = rng.standard_normal(n)
        y = wrapped(u)
        assert np.allclose(y[bc.dofs], u[bc.dofs])


class TestRheologyProperties:
    @given(
        eps=st.floats(1e-12, 1e3),
        pressure=st.floats(-10.0, 100.0),
        strain=st.floats(0.0, 10.0),
    )
    def test_composite_always_positive_and_bounded(self, eps, pressure, strain):
        from repro.rheology import CompositeRheology, DruckerPrager
        from repro.rheology.laws import PowerLawViscosity

        comp = CompositeRheology(
            PowerLawViscosity(10.0, n=3.0),
            DruckerPrager(1.0, 30.0, cohesion_weak=0.2, softening_strain=0.5,
                          tension_cutoff=0.01),
            eta_min=1e-3, eta_max=1e3,
        )
        eta, deta, _ = comp.evaluate(
            np.array([eps]), np.array([pressure]), None, np.array([strain])
        )
        assert 1e-3 <= eta[0] <= 1e3
        assert np.isfinite(deta[0])

    @given(p1=st.floats(0.0, 50.0), p2=st.floats(0.0, 50.0))
    def test_drucker_prager_monotone_in_pressure(self, p1, p2):
        from repro.rheology import DruckerPrager

        dp = DruckerPrager(1.0, 30.0)
        lo, hi = min(p1, p2), max(p1, p2)
        assert dp.strength(lo) <= dp.strength(hi) + 1e-12


class TestStrengthGraphProperties:
    @given(seed=st.integers(0, 200), theta=st.floats(0.001, 0.5))
    def test_symmetric_boolean(self, seed, theta):
        import scipy.sparse as sp
        from repro.mg.sa import block_strength_graph

        rng = np.random.default_rng(seed)
        n = 12
        A = rng.standard_normal((3 * n, 3 * n))
        A = sp.csr_matrix(A @ A.T + 3 * n * np.eye(3 * n))
        S = block_strength_graph(A, 3, theta)
        assert (S != S.T).nnz == 0
        assert np.all(S.diagonal() == 0)


class TestKrylovProperties:
    @given(seed=st.integers(0, 300))
    def test_gcr_reaches_tolerance(self, seed):
        import scipy.sparse as sp
        from repro.solvers import gcr

        rng = np.random.default_rng(seed)
        n = 25
        Q = rng.standard_normal((n, n))
        A = sp.csr_matrix(Q @ Q.T + n * np.eye(n))
        b = rng.standard_normal(n)
        res = gcr(lambda v: A @ v, b, rtol=1e-8, maxiter=200)
        assert res.converged
        assert np.linalg.norm(b - A @ res.x) <= 1.01e-8 * np.linalg.norm(b) + 1e-12
