"""Gauss quadrature: exactness, ordering, tensor structure."""

import numpy as np
import pytest

from repro.fem.quadrature import GaussQuadrature, gauss_1d


class TestGauss1D:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_weights_sum_to_interval_length(self, n):
        _, w = gauss_1d(n)
        assert w.sum() == pytest.approx(2.0, abs=1e-14)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_polynomial_exactness(self, n):
        """n-point rule integrates degree 2n-1 exactly."""
        pts, w = gauss_1d(n)
        for deg in range(2 * n):
            exact = (1 - (-1) ** (deg + 1)) / (deg + 1)
            assert (w * pts**deg).sum() == pytest.approx(exact, abs=1e-13)

    def test_degree_beyond_exactness_fails(self):
        pts, w = gauss_1d(2)
        # degree 4 is not integrated exactly by a 2-point rule
        assert abs((w * pts**4).sum() - 2.0 / 5.0) > 1e-3

    def test_points_symmetric(self):
        pts, _ = gauss_1d(3)
        assert np.allclose(pts, -pts[::-1])

    def test_invalid_npoints(self):
        with pytest.raises(ValueError):
            gauss_1d(0)


class TestHexQuadrature:
    def test_total_weight_is_cube_volume(self):
        q = GaussQuadrature.hex(3)
        assert q.weights.sum() == pytest.approx(8.0, abs=1e-13)

    def test_npoints(self):
        assert GaussQuadrature.hex(2).npoints == 8
        assert GaussQuadrature.hex(3).npoints == 27

    def test_x_fastest_ordering(self):
        """q = i + n*(j + n*k) with i the x index."""
        q = GaussQuadrature.hex(3)
        p1, _ = gauss_1d(3)
        # first three points share y, z and walk x
        assert np.allclose(q.points[:3, 0], p1)
        assert np.allclose(q.points[:3, 1], p1[0])
        assert np.allclose(q.points[:3, 2], p1[0])
        # point 9 steps y once
        assert q.points[3, 1] == pytest.approx(p1[1])
        assert q.points[9, 2] == pytest.approx(p1[1])

    def test_trilinear_monomial_exact(self):
        q = GaussQuadrature.hex(2)
        x, y, z = q.points.T
        val = (q.weights * x**2 * y**2 * z**2).sum()
        assert val == pytest.approx((2 / 3) ** 3, abs=1e-13)

    def test_weights_match_tensor_product(self):
        q = GaussQuadrature.hex(3)
        p1, w1 = q.line()
        expected = np.einsum("k,j,i->kji", w1, w1, w1).ravel()
        assert np.allclose(q.weights, expected)
