"""Relaxation preconditioners: Jacobi, block Jacobi LU, ILU(0), ASM."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import (
    JacobiPreconditioner,
    BlockJacobiLU,
    ILU0,
    AdditiveSchwarz,
    jacobi_smooth,
    gcr,
    cg,
)


def spd(n=80, seed=0, bandwidth=3):
    rng = np.random.default_rng(seed)
    A = sp.diags(
        [rng.uniform(0.1, 1, n - abs(k)) for k in range(-bandwidth, bandwidth + 1)],
        list(range(-bandwidth, bandwidth + 1)),
    ).tocsr()
    A = A + A.T + sp.diags(np.full(n, 2.0 * (2 * bandwidth + 1)))
    return sp.csr_matrix(A)


class TestJacobi:
    def test_apply(self):
        M = JacobiPreconditioner(np.array([2.0, 4.0]))
        assert np.allclose(M(np.array([2.0, 4.0])), [1.0, 1.0])

    def test_rejects_zero_diagonal(self):
        with pytest.raises(ValueError):
            JacobiPreconditioner(np.array([1.0, 0.0]))

    def test_damped_jacobi_smooth_reduces_residual(self):
        A = spd()
        rng = np.random.default_rng(1)
        b = rng.standard_normal(A.shape[0])
        x = jacobi_smooth(lambda v: A @ v, A.diagonal(), b, np.zeros_like(b),
                          iterations=5)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)


class TestBlockJacobiLU:
    def test_single_block_is_exact(self):
        A = spd()
        rng = np.random.default_rng(2)
        b = rng.standard_normal(A.shape[0])
        M = BlockJacobiLU(A, nblocks=1)
        assert np.allclose(A @ M(b), b, atol=1e-9)

    @pytest.mark.parametrize("nblocks", [2, 4, 7])
    def test_preconditions(self, nblocks):
        A = spd()
        rng = np.random.default_rng(3)
        b = rng.standard_normal(A.shape[0])
        res = cg(lambda v: A @ v, b, M=BlockJacobiLU(A, nblocks), rtol=1e-10,
                 maxiter=200)
        assert res.converged

    def test_more_blocks_weaker(self):
        """More (virtual) subdomains -> weaker coarse preconditioner, the
        scaling pathology SS V attributes to one-subdomain-per-rank solvers."""
        A = spd(n=200, seed=5)
        b = np.ones(200)
        its = []
        for nb in (1, 8, 40):
            res = cg(lambda v: A @ v, b, M=BlockJacobiLU(A, nb), rtol=1e-10,
                     maxiter=300)
            its.append(res.iterations)
        assert its[0] <= its[1] <= its[2]


class TestILU0:
    def test_exact_for_full_pattern(self, rng):
        n = 30
        Q = rng.standard_normal((n, n))
        A = sp.csr_matrix(Q @ Q.T + n * np.eye(n))
        M = ILU0(A)
        b = rng.standard_normal(n)
        assert np.allclose(A @ M(b), b, atol=1e-8)

    def test_exact_for_tridiagonal(self, rng):
        """ILU(0) on a banded matrix with no fill-in IS the exact LU."""
        n = 50
        A = sp.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n, n)).tocsr()
        M = ILU0(A)
        b = rng.standard_normal(n)
        assert np.allclose(A @ M(b), b, atol=1e-10)

    def test_preconditions_sparse_spd(self, rng):
        A = spd(n=100, seed=7)
        b = rng.standard_normal(100)
        plain = gcr(lambda v: A @ v, b, rtol=1e-10, maxiter=400)
        pc = gcr(lambda v: A @ v, b, M=ILU0(A), rtol=1e-10, maxiter=400)
        assert pc.converged and pc.iterations <= plain.iterations

    def test_requires_structural_diagonal(self):
        A = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]]))
        A.eliminate_zeros()
        with pytest.raises(ValueError):
            ILU0(A)


class TestASM:
    def test_single_domain_full_overlap_exact(self, rng):
        A = spd(n=40)
        M = AdditiveSchwarz(A, nsub=1, overlap=0)
        b = rng.standard_normal(40)
        assert np.allclose(A @ M(b), b, atol=1e-9)

    def test_overlap_improves_convergence(self, rng):
        A = spd(n=200, seed=9)
        b = rng.standard_normal(200)
        its = {}
        for ov in (0, 2, 6):
            M = AdditiveSchwarz(A, nsub=8, overlap=ov)
            its[ov] = gcr(lambda v: A @ v, b, M=M, rtol=1e-10, maxiter=400).iterations
        assert its[6] <= its[2] <= its[0] + 1

    def test_ilu0_subsolves(self, rng):
        A = spd(n=120, seed=11)
        b = rng.standard_normal(120)
        M = AdditiveSchwarz(A, nsub=4, overlap=2, subsolve="ilu0")
        res = gcr(lambda v: A @ v, b, M=M, rtol=1e-8, maxiter=400)
        assert res.converged

    def test_unknown_subsolve(self):
        with pytest.raises(ValueError):
            AdditiveSchwarz(spd(), subsolve="cholesky")

    def test_more_subdomains_more_iterations(self, rng):
        """ASM's algorithmic-scalability pathology (SS V): iteration count
        grows with the subdomain count."""
        A = spd(n=300, seed=13)
        b = rng.standard_normal(300)
        its = []
        for nsub in (2, 10, 30):
            M = AdditiveSchwarz(A, nsub=nsub, overlap=1)
            its.append(gcr(lambda v: A @ v, b, M=M, rtol=1e-10, maxiter=500).iterations)
        assert its[0] <= its[-1]
