"""Solver resilience layer: reasons, guards, fault injection, fallback,
rollback, and crash recovery (the adversarial suite of the robustness PR)."""

import glob
import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.parallel.executor import ParallelExecutor, WorkerCrash, partition_range
from repro.resilience import (
    BreakdownError,
    ConvergedReason,
    DEFAULT_RETRY_ON,
    FallbackLadder,
    FaultInjector,
    ResidualGuard,
    Rung,
    WorkerKiller,
    default_rungs,
    nonfinite,
)
from repro.sim import (
    SimulationConfig,
    load_checkpoint,
    make_rifting,
    make_sinker,
    save_checkpoint,
)
from repro.sim.checkpoint import restore_state, state_dict
from repro.sim.rifting import RiftingConfig
from repro.sim.sinker import SinkerConfig, sinker_stokes_problem
from repro.solvers import (
    ChebyshevSmoother,
    bicgstab,
    cg,
    fgmres,
    gcr,
    gmres,
    newton,
)
from repro.stokes import StokesConfig, solve_stokes, solve_stokes_resilient
from repro.stokes.fieldsplit import FieldSplitPreconditioner
from repro.stokes.operators import StokesOperator
from repro import obs

ALL = [cg, gmres, fgmres, gcr, bicgstab]


def spd_system(n=80, seed=0):
    rng = np.random.default_rng(seed)
    Q = rng.standard_normal((n, n))
    A = sp.csr_matrix(Q @ Q.T + n * np.eye(n))
    b = rng.standard_normal(n)
    return A, b


# --------------------------------------------------------------------- #
# reasons and guards
# --------------------------------------------------------------------- #
class TestReasons:
    def test_sign_convention(self):
        assert ConvergedReason.CONVERGED_RTOL.is_converged
        assert ConvergedReason.CONVERGED_ATOL.is_converged
        for r in (ConvergedReason.DIVERGED_ITS, ConvergedReason.DIVERGED_DTOL,
                  ConvergedReason.DIVERGED_NAN,
                  ConvergedReason.DIVERGED_BREAKDOWN,
                  ConvergedReason.DIVERGED_STAGNATION):
            assert r.is_diverged and not r.is_converged
        assert not ConvergedReason.CONVERGED_ITERATING.is_converged
        assert not ConvergedReason.CONVERGED_ITERATING.is_diverged

    def test_nonfinite(self):
        assert nonfinite(float("nan"))
        assert nonfinite(float("inf"))
        assert nonfinite(float("-inf"))
        assert not nonfinite(0.0) and not nonfinite(-1e300)

    def test_breakdown_error_carries_reason(self):
        err = BreakdownError("x", reason=ConvergedReason.DIVERGED_NAN)
        assert err.reason == ConvergedReason.DIVERGED_NAN
        assert BreakdownError("y").reason == ConvergedReason.DIVERGED_BREAKDOWN


class TestResidualGuard:
    def test_nan_and_inf(self):
        g = ResidualGuard(1.0)
        assert g.check(float("nan")) == ConvergedReason.DIVERGED_NAN
        assert g.check(float("inf")) == ConvergedReason.DIVERGED_NAN

    def test_dtol(self):
        g = ResidualGuard(1.0, dtol=10.0)
        assert g.check(9.0) is None
        assert g.check(11.0) == ConvergedReason.DIVERGED_DTOL

    def test_dtol_disabled(self):
        g = ResidualGuard(1.0, dtol=0.0)
        assert g.check(1e300) is None

    def test_stagnation_window(self):
        g = ResidualGuard(1.0, dtol=0.0, stag_window=3)
        assert g.check(1.0) is None
        assert g.check(1.0) is None
        assert g.check(1.0) == ConvergedReason.DIVERGED_STAGNATION

    def test_improvement_resets_window(self):
        g = ResidualGuard(1.0, dtol=0.0, stag_window=3)
        for r in (0.9, 0.8, 0.7, 0.6, 0.5, 0.4):
            assert g.check(r) is None


# --------------------------------------------------------------------- #
# reason threading through every solver entry point
# --------------------------------------------------------------------- #
class TestKrylovReasons:
    @pytest.mark.parametrize("method", ALL)
    def test_converged_rtol(self, method):
        A, b = spd_system()
        res = method(lambda v: A @ v, b, rtol=1e-8, maxiter=600)
        assert res.converged
        assert res.reason == ConvergedReason.CONVERGED_RTOL

    @pytest.mark.parametrize("method", ALL)
    def test_converged_atol(self, method):
        A, b = spd_system()
        # atol dominates rtol * ||b|| -> the absolute test is the binding one
        res = method(lambda v: A @ v, b, rtol=1e-16,
                     atol=1e-6 * np.linalg.norm(b), maxiter=600)
        assert res.converged
        assert res.reason == ConvergedReason.CONVERGED_ATOL

    @pytest.mark.parametrize("method", ALL)
    def test_diverged_its(self, method):
        A, b = spd_system()
        res = method(lambda v: A @ v, b, rtol=1e-14, maxiter=2)
        assert not res.converged
        assert res.reason == ConvergedReason.DIVERGED_ITS

    @pytest.mark.parametrize("method", ALL)
    def test_nan_matvec_is_diverged_nan(self, method):
        A, b = spd_system()
        calls = [0]

        def poisoned(v):
            calls[0] += 1
            out = A @ v
            if calls[0] >= 2:  # initial residual stays clean
                out = out.copy()
                out[0] = np.nan
            return out

        res = method(poisoned, b, rtol=1e-10, maxiter=200)
        assert not res.converged
        assert res.reason == ConvergedReason.DIVERGED_NAN
        # the guard stops within a few iterations of the poisoning
        assert res.iterations <= 5

    @pytest.mark.parametrize("method", ALL)
    def test_nan_rhs_detected_immediately(self, method):
        A, b = spd_system()
        b = b.copy()
        b[0] = np.nan
        res = method(lambda v: A @ v, b, maxiter=50)
        assert res.reason == ConvergedReason.DIVERGED_NAN
        assert res.iterations == 0

    @pytest.mark.parametrize("method", ALL)
    def test_reason_in_to_dict(self, method):
        A, b = spd_system()
        d = method(lambda v: A @ v, b, rtol=1e-8, maxiter=600).to_dict()
        assert d["reason"] == "CONVERGED_RTOL"


class TestIndefiniteRegressions:
    """bicgstab/gcr used to spin to max_it on hopeless systems."""

    def _indefinite(self, n=80, seed=0):
        rng = np.random.default_rng(seed)
        d = np.ones(n)
        d[: n // 2] = -1.0
        return np.diag(d) + np.triu(rng.standard_normal((n, n)), 1) * 2.0, \
            rng.standard_normal(n)

    def test_bicgstab_indefinite_stops_early(self):
        A, b = self._indefinite()
        res = bicgstab(lambda v: A @ v, b, rtol=1e-12, maxiter=2000)
        assert not res.converged
        assert res.reason in (ConvergedReason.DIVERGED_STAGNATION,
                              ConvergedReason.DIVERGED_DTOL,
                              ConvergedReason.DIVERGED_BREAKDOWN)
        assert res.iterations < 200  # not 2000 useless iterations

    def test_bicgstab_growth_trips_dtol(self):
        A, b = self._indefinite(seed=3)
        res = bicgstab(lambda v: A @ v, b, rtol=1e-12, maxiter=2000, dtol=5.0)
        assert res.reason in (ConvergedReason.DIVERGED_DTOL,
                              ConvergedReason.DIVERGED_STAGNATION)
        assert res.iterations < 100

    def test_gcr_inconsistent_system_stagnates(self):
        # singular operator + rhs with a null-space component: the minimal
        # residual is bounded away from zero, so GCR can only stagnate
        n = 60
        d = np.ones(n)
        d[0] = 0.0
        A = np.diag(d)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(n)
        b[0] = 1.0
        res = gcr(lambda v: A @ v, b, rtol=1e-12, maxiter=1000)
        assert not res.converged
        assert res.reason in (ConvergedReason.DIVERGED_STAGNATION,
                              ConvergedReason.DIVERGED_BREAKDOWN)
        assert res.iterations < 200

    def test_cg_indefinite_breakdown(self):
        n = 40
        d = np.ones(n)
        d[0] = -1.0
        A = np.diag(d)
        rng = np.random.default_rng(2)
        res = cg(lambda v: A @ v, rng.standard_normal(n), rtol=1e-12,
                 maxiter=200)
        assert res.reason == ConvergedReason.DIVERGED_BREAKDOWN


class TestNonlinearReasons:
    def test_newton_nan_residual(self):
        def residual(x):
            return np.full_like(x, np.nan)

        res = newton(residual, lambda x, F, t: (F, 0), np.ones(4))
        assert res.reason == ConvergedReason.DIVERGED_NAN
        assert not res.converged

    def test_newton_dtol(self):
        # each "correction" makes things worse by 100x
        state = {"f": 1.0}

        def residual(x):
            return np.full_like(x, state["f"])

        def solve(x, F, t):
            state["f"] *= 100.0
            return np.zeros_like(x), 1

        res = newton(residual, solve, np.ones(4), rtol=1e-10, maxiter=20,
                     line_search=False, dtol=1e3)
        assert res.reason == ConvergedReason.DIVERGED_DTOL

    def test_newton_its(self):
        def residual(x):
            return np.ones_like(x)

        res = newton(residual, lambda x, F, t: (np.zeros_like(x), 1),
                     np.ones(4), rtol=1e-10, maxiter=3, line_search=False)
        assert res.reason == ConvergedReason.DIVERGED_ITS

    def test_newton_converged_reason(self):
        # residual convention F(x) = b - J x: dx = F is the exact step
        def residual(x):
            return 2.0 - x

        def solve(x, F, t):
            return F, 1

        res = newton(residual, solve, np.zeros(4), rtol=1e-8)
        assert res.converged
        assert res.reason == ConvergedReason.CONVERGED_RTOL


class TestChebyshevGuard:
    def test_poisoned_apply_raises_breakdown(self):
        n = 30
        A = np.diag(np.linspace(1.0, 4.0, n))
        sm = ChebyshevSmoother(lambda v: A @ v, np.diag(A), degree=2)
        with FaultInjector() as fi:
            fi.poison_nan(sm, "A", mode="all", label="nan:A")
            # patching the attribute directly: sm.A is a plain callable
            with pytest.raises(BreakdownError) as exc:
                sm.smooth(np.ones(n))
        assert exc.value.reason == ConvergedReason.DIVERGED_NAN

    def test_guard_off_passes_nan_through(self):
        n = 10
        A = np.diag(np.ones(n))
        sm = ChebyshevSmoother(lambda v: A @ v, np.ones(n), degree=2,
                               interval=(0.2, 1.1), guard=False)
        sm.A = lambda v: np.full(n, np.nan)
        out = sm.smooth(np.ones(n))
        assert np.isnan(out).any()


# --------------------------------------------------------------------- #
# fault injector mechanics
# --------------------------------------------------------------------- #
class TestFaultInjector:
    def test_fires_on_exact_call_and_restores(self):
        class K:
            def f(self):
                return np.zeros(3)

        orig = K.f
        with FaultInjector() as fi:
            fi.poison_nan(K, "f", calls={2}, mode="all")
            k = K()
            assert np.isfinite(k.f()).all()
            assert np.isnan(k.f()).all()
            assert np.isfinite(k.f()).all()
        assert K.f is orig
        assert fi.fired == [{"label": "nan:f", "call": 2}]

    def test_limit_bounds_firings(self):
        class K:
            def f(self):
                return np.zeros(2)

        with FaultInjector() as fi:
            fi.poison_nan(K, "f", limit=1, mode="all")
            k = K()
            assert np.isnan(k.f()).all()
            assert np.isfinite(k.f()).all()

    def test_when_predicate(self):
        class K:
            def f(self):
                return np.zeros(2)

        gate = {"open": False}
        with FaultInjector() as fi:
            fi.poison_nan(K, "f", when=lambda: gate["open"], mode="all")
            k = K()
            assert np.isfinite(k.f()).all()
            gate["open"] = True
            assert np.isnan(k.f()).all()

    def test_singular_diagonal(self):
        class K:
            def diagonal(self):
                return np.ones(10)

        with FaultInjector() as fi:
            fi.singular_diagonal(K, fraction=0.3)
            d = K().diagonal()
        assert (d[:3] == 0.0).all() and (d[3:] == 1.0).all()

    def test_fail_with(self):
        class K:
            def f(self):
                return 1

        with FaultInjector() as fi:
            fi.fail_with(K, "f", BreakdownError("boom"))
            with pytest.raises(BreakdownError):
                K().f()

    def test_truncate_file(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        with open(path, "wb") as fh:
            fh.write(b"x" * 1000)
        kept = FaultInjector.truncate_file(path, keep_fraction=0.25)
        assert kept == 250 == os.path.getsize(path)


# --------------------------------------------------------------------- #
# fallback ladder
# --------------------------------------------------------------------- #
class _Cfg:
    """Duck-typed config stand-in (the ladder only names rungs here)."""

    def __init__(self, name="primary"):
        self.name = name


class _Result:
    def __init__(self, reason):
        self.reason = reason


class TestFallbackLadder:
    def _ladder(self, names=("a", "b", "c")):
        return FallbackLadder([Rung(n, lambda cfg, n=n: _Cfg(n)) for n in names])

    def test_first_rung_success_no_events(self):
        ladder = self._ladder()
        result, events = ladder.walk(
            _Cfg(), lambda cfg: _Result(ConvergedReason.CONVERGED_RTOL),
            classify=lambda r: r.reason,
        )
        assert result.reason == ConvergedReason.CONVERGED_RTOL
        assert events == []

    def test_walks_to_second_rung(self):
        ladder = self._ladder()
        seen = []

        def attempt(cfg):
            seen.append(cfg.name)
            if cfg.name == "a":
                return _Result(ConvergedReason.DIVERGED_NAN)
            return _Result(ConvergedReason.CONVERGED_RTOL)

        result, events = ladder.walk(_Cfg(), attempt,
                                     classify=lambda r: r.reason)
        assert seen == ["a", "b"]
        assert result.reason == ConvergedReason.CONVERGED_RTOL
        assert len(events) == 1
        assert events[0]["rung"] == "a"
        assert events[0]["reason"] == "DIVERGED_NAN"
        assert events[0]["next"] == "b"

    def test_recoverable_exception_downgrades(self):
        ladder = self._ladder()

        def attempt(cfg):
            if cfg.name == "a":
                raise BreakdownError("smoother died",
                                     reason=ConvergedReason.DIVERGED_NAN)
            return _Result(ConvergedReason.CONVERGED_RTOL)

        result, events = ladder.walk(_Cfg(), attempt,
                                     classify=lambda r: r.reason)
        assert result.reason == ConvergedReason.CONVERGED_RTOL
        assert events[0]["reason"] == "DIVERGED_NAN"
        assert "smoother died" in events[0]["error"]

    def test_diverged_its_not_retried_by_default(self):
        ladder = self._ladder()
        seen = []

        def attempt(cfg):
            seen.append(cfg.name)
            return _Result(ConvergedReason.DIVERGED_ITS)

        result, events = ladder.walk(_Cfg(), attempt,
                                     classify=lambda r: r.reason)
        assert seen == ["a"]  # budget exhaustion is not a ladder trigger
        assert result.reason == ConvergedReason.DIVERGED_ITS
        assert ConvergedReason.DIVERGED_ITS not in DEFAULT_RETRY_ON

    def test_all_rungs_raise(self):
        ladder = self._ladder()

        def attempt(cfg):
            raise BreakdownError(f"rung {cfg.name} died")

        with pytest.raises(BreakdownError) as exc:
            ladder.walk(_Cfg(), attempt, classify=lambda r: r.reason)
        assert "every fallback rung failed" in str(exc.value)

    def test_last_rung_diverged_result_returned(self):
        ladder = self._ladder(names=("a", "b"))

        def attempt(cfg):
            return _Result(ConvergedReason.DIVERGED_DTOL)

        result, events = ladder.walk(
            _Cfg(), attempt,
            classify=lambda r: r.reason,
        )
        # caller sees the reason and owns the next policy level
        assert result.reason == ConvergedReason.DIVERGED_DTOL
        assert len(events) == 2

    def test_default_rungs_transforms(self):
        cfg = StokesConfig(maxiter=100)
        rungs = default_rungs()
        assert [r.name for r in rungs] == [
            "primary", "assembled-gmg", "sa-amg", "jacobi-restart"]
        assert rungs[0].transform(cfg) is cfg
        assert rungs[1].transform(cfg).operator == "asmb"
        sa = rungs[2].transform(cfg)
        assert sa.mg_levels == 1 and sa.coarse_solver == "sa"
        jac = rungs[3].transform(cfg)
        assert jac.velocity_pc == "jacobi"
        assert jac.outer == "fgmres"
        assert jac.maxiter == 200


# --------------------------------------------------------------------- #
# stokes-level fallback
# --------------------------------------------------------------------- #
def _tiny_problem():
    return sinker_stokes_problem(
        SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2, delta_eta=10.0)
    )


class TestStokesResilient:
    CFG = StokesConfig(mg_levels=1, coarse_solver="lu", maxiter=200)

    def test_clean_path_no_events(self):
        pb = _tiny_problem()
        sol = solve_stokes_resilient(pb, self.CFG)
        assert sol.converged
        assert sol.reason.is_converged
        assert "fallback_events" not in sol.extra

    def test_jacobi_velocity_pc_solves(self):
        pb = _tiny_problem()
        cfg = StokesConfig(velocity_pc="jacobi", outer="fgmres", maxiter=3000,
                           rtol=1e-4)
        sol = solve_stokes(pb, cfg)
        assert sol.converged
        assert np.isfinite(sol.u).all() and np.isfinite(sol.p).all()

    def test_nan_preconditioner_falls_back(self):
        pb = _tiny_problem()
        with FaultInjector() as fi:
            # poison every PC apply of the first (primary) attempt only
            fi.poison_nan(FieldSplitPreconditioner, "__call__", calls={1},
                          mode="all")
            sol = solve_stokes_resilient(pb, self.CFG)
        assert fi.fired
        assert sol.converged
        assert np.isfinite(sol.u).all() and np.isfinite(sol.p).all()
        events = sol.extra["fallback_events"]
        assert events[0]["rung"] == "primary"
        assert events[0]["reason"] == "DIVERGED_NAN"
        assert events[0]["next"] == "assembled-gmg"

    def test_fallback_records_obs_events(self):
        pb = _tiny_problem()
        obs.reset()
        obs.enable()
        try:
            with FaultInjector() as fi:
                fi.poison_nan(FieldSplitPreconditioner, "__call__", calls={1},
                              mode="all")
                sol = solve_stokes_resilient(pb, self.CFG)
        finally:
            obs.disable()
        assert sol.converged
        names = {e.name for e in obs.REGISTRY.events.values()}
        assert "ResilienceFallback[primary]" in names
        trace = obs.REGISTRY.traces["resilience"]
        assert any(t["event"] == "fallback" and t["rung"] == "primary"
                   for t in trace)
        doc = obs.snapshot()
        obs.validate(doc)  # resilience stream passes the schema
        obs.reset()


# --------------------------------------------------------------------- #
# checkpoint robustness
# --------------------------------------------------------------------- #
def _chk_sim():
    return make_sinker(
        SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                     delta_eta=10.0),
        SimulationConfig(stokes=StokesConfig(mg_levels=1, coarse_solver="lu"),
                         max_newton=1),
    )


class TestCheckpointRobustness:
    def test_save_is_atomic_no_temp_left(self, tmp_path):
        sim = _chk_sim()
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        assert os.path.exists(path)
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_save_appends_npz(self, tmp_path):
        sim = _chk_sim()
        path = str(tmp_path / "chk")
        save_checkpoint(path, sim)
        assert os.path.exists(path + ".npz")
        sim2 = _chk_sim()
        load_checkpoint(path, sim2)  # loader resolves the same name
        assert np.allclose(sim2.u, sim.u)

    def test_failed_save_leaves_previous_checkpoint(self, tmp_path):
        sim = _chk_sim()
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        before = open(path, "rb").read()
        with FaultInjector() as fi:
            fi.fail_with(type(sim.points), "field", OSError("disk full"))
            sim.points.add_field("doomed", np.ones(sim.points.n))
            with pytest.raises(OSError):
                save_checkpoint(path, sim)
        assert open(path, "rb").read() == before
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_truncated_checkpoint_raises_cleanly(self, tmp_path):
        sim = _chk_sim()
        sim.step()
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        FaultInjector.truncate_file(path, keep_fraction=0.5)
        sim2 = _chk_sim()
        u0, p0 = sim2.u.copy(), sim2.p.copy()
        t0, i0, n0 = sim2.time, sim2.step_index, sim2.points.n
        with pytest.raises(ValueError, match="unreadable or truncated"):
            load_checkpoint(path, sim2)
        # sim2 untouched: validation happened before any mutation
        assert np.array_equal(sim2.u, u0) and np.array_equal(sim2.p, p0)
        assert sim2.time == t0 and sim2.step_index == i0
        assert sim2.points.n == n0

    def test_garbage_file_raises_value_error(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not a zip archive")
        with pytest.raises(ValueError, match="unreadable or truncated"):
            load_checkpoint(path, _chk_sim())

    def test_T_none_roundtrip(self, tmp_path):
        # sinker has no energy solve: T is None and must come back None,
        # not as a zero-length array (the old lossy convention)
        sim = _chk_sim()
        assert sim.T is None
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        sim2 = _chk_sim()
        sim2.T = np.ones(8)  # poison: the load must reset it to None
        load_checkpoint(path, sim2)
        assert sim2.T is None

    def test_state_dict_restore_roundtrip_in_memory(self):
        sim = _chk_sim()
        sim.step()
        snap = state_dict(sim)
        u, p, t, i = sim.u.copy(), sim.p.copy(), sim.time, sim.step_index
        sim.step()  # evolve past the snapshot
        restore_state(sim, snap)
        assert np.array_equal(sim.u, u) and np.array_equal(sim.p, p)
        assert sim.time == t and sim.step_index == i

    def test_restore_rejects_missing_key(self):
        sim = _chk_sim()
        snap = state_dict(sim)
        del snap["u"]
        with pytest.raises(ValueError, match="missing required key"):
            restore_state(sim, snap)


# --------------------------------------------------------------------- #
# executor crash recovery
# --------------------------------------------------------------------- #
class _SquareKernel:
    """Trivial deterministic span kernel for crash tests."""

    _parallel_state_version = 0

    def __init__(self, n):
        self.n = n

    def apply_span(self, u, s, e):
        out = np.zeros(self.n)
        out[s:e] = u[s:e] ** 2 + 3.0 * u[s:e]
        return out


@pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
class TestExecutorCrashRecovery:
    def test_worker_kill_recovers_bit_identical(self, tmp_path):
        n = 64
        state = _SquareKernel(n)
        killer = WorkerKiller(state, "apply_span",
                              str(tmp_path / "kill.sentinel"))
        ex = ParallelExecutor(workers=2, backend="process")
        try:
            spans = partition_range(n, 2)
            u = np.linspace(-1.0, 1.0, n)
            got = ex.dispatch(killer, "kernel", spans, u, out_len=n)
            want = ParallelExecutor.run_serial(state, "apply_span", spans, u,
                                               [n] * len(spans))
            assert np.array_equal(got, want)  # bit-identical after respawn
            assert ex.stats.crashes == 1
            assert ex.stats.respawns >= 1
            assert os.path.exists(str(tmp_path / "kill.sentinel"))
        finally:
            ex.shutdown()

    def test_retry_disabled_raises(self, tmp_path):
        n = 16
        state = _SquareKernel(n)
        killer = WorkerKiller(state, "apply_span",
                              str(tmp_path / "kill2.sentinel"))
        ex = ParallelExecutor(workers=2, backend="process",
                              retry_on_crash=False)
        try:
            with pytest.raises(WorkerCrash):
                ex.dispatch(killer, "kernel", partition_range(n, 2),
                            np.ones(n), out_len=n)
        finally:
            ex.shutdown()

    def test_crash_counter_in_stats_dict(self):
        ex = ParallelExecutor(workers=1)
        assert "crashes" in ex.stats.as_dict()


# --------------------------------------------------------------------- #
# time-loop self-healing
# --------------------------------------------------------------------- #
def _resilient_sinker(**kw):
    sim = make_sinker(
        SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                     delta_eta=10.0),
        SimulationConfig(stokes=StokesConfig(mg_levels=1, coarse_solver="lu"),
                         max_newton=1, resilient=True, **kw),
    )
    return sim


class TestTimeLoopRollback:
    def test_clean_steps_have_zero_retries(self):
        sim = _resilient_sinker()
        stats = sim.step()
        assert stats["retries"] == 0
        assert stats["dt_scale"] == 1.0
        assert stats["newton_reason"] in ("CONVERGED_RTOL", "CONVERGED_ATOL",
                                          "DIVERGED_ITS")

    def test_nan_step_rolls_back_and_halves_dt(self):
        sim = _resilient_sinker()
        sim.step()  # one clean step to have nontrivial state
        u, t, i = sim.u.copy(), sim.time, sim.step_index
        with FaultInjector() as fi:
            fi.poison_nan(StokesOperator, "residual", mode="all", limit=1,
                          when=lambda: sim.step_index == i)
            stats = sim.step()
        assert fi.fired
        assert stats["retries"] == 1
        assert stats["dt_scale"] == 0.5
        assert sim.step_index == i + 1
        assert np.isfinite(sim.u).all() and np.isfinite(sim.p).all()

    def test_dt_recovers_after_clean_steps(self):
        sim = _resilient_sinker(dt_recover_after=1)
        i0 = sim.step_index
        with FaultInjector() as fi:
            fi.poison_nan(StokesOperator, "residual", mode="all", limit=1,
                          when=lambda: sim.step_index == i0)
            sim.step()
        assert sim._dt_scale == 0.5
        sim.step()  # clean -> one back-off factor undone
        assert sim._dt_scale == 1.0

    def test_persistent_failure_raises_after_budget(self):
        sim = _resilient_sinker(max_step_retries=2)
        with FaultInjector() as fi:
            fi.poison_nan(StokesOperator, "residual", mode="all")
            with pytest.raises(BreakdownError, match="failed after 3 attempts"):
                sim.step()
        # the evolving state was restored to the pre-step snapshot
        assert sim.step_index == 0
        assert np.isfinite(sim.u).all()

    def test_rollback_traced(self):
        sim = _resilient_sinker()
        obs.reset()
        obs.enable()
        try:
            with FaultInjector() as fi:
                fi.poison_nan(StokesOperator, "residual", mode="all", limit=1)
                sim.step()
        finally:
            obs.disable()
        trace = obs.REGISTRY.traces["resilience"]
        assert any(t["event"] == "rollback" for t in trace)
        names = {e.name for e in obs.REGISTRY.events.values()}
        assert "ResilienceRollback" in names
        obs.reset()

    def test_non_resilient_step_unchanged(self):
        sim = make_sinker(
            SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                         delta_eta=10.0),
            SimulationConfig(stokes=StokesConfig(mg_levels=1,
                                                 coarse_solver="lu"),
                             max_newton=1),
        )
        stats = sim.step()
        assert stats["retries"] == 0
        assert "newton_reason" in stats


# --------------------------------------------------------------------- #
# acceptance: rifting run survives injected faults end to end
# --------------------------------------------------------------------- #
class TestRiftingSurvivesFaults:
    def test_six_steps_with_nan_fault_and_newton_divergence(self):
        cfg = RiftingConfig(shape=(6, 4, 2), mg_levels=1)
        sim = make_rifting(cfg)
        sim.config.resilient = True
        obs.reset()
        obs.enable()
        nsteps = 6
        try:
            with FaultInjector() as fi:
                # step 3 (index 2): poisoned preconditioner output drives
                # the outer Krylov solve to DIVERGED_NAN -> fallback ladder
                fi.poison_nan(FieldSplitPreconditioner, "__call__",
                              mode="all", limit=1,
                              when=lambda: sim.step_index == 2,
                              label="nan:pc")
                # step 5 (index 4): poisoned nonlinear residual forces a
                # hard Newton failure -> snapshot rollback with dt halving
                fi.poison_nan(StokesOperator, "residual", mode="all",
                              limit=1, when=lambda: sim.step_index == 4,
                              label="nan:newton")
                stats = [sim.step() for _ in range(nsteps)]
            report = obs.log_view()
        finally:
            obs.disable()
        fired = {f["label"] for f in fi.fired}
        assert fired == {"nan:pc", "nan:newton"}
        # the run completed every step
        assert sim.step_index == nsteps
        assert len(stats) == nsteps
        # recovery actually happened: fallback on step 3, rollback on step 5
        assert any(s["fallback_events"] for s in stats)
        assert any(s["retries"] > 0 for s in stats)
        # recovery events appear in the -log_view report
        assert "ResilienceFallback[primary]" in report
        assert "ResilienceRollback" in report
        trace = obs.REGISTRY.traces["resilience"]
        assert any(t["event"] == "fallback" for t in trace)
        assert any(t["event"] == "rollback" for t in trace)
        # final fields are finite
        assert np.isfinite(sim.u).all()
        assert np.isfinite(sim.p).all()
        assert np.isfinite(sim.T).all()
        obs.reset()
