"""Flow laws: values, derivatives, plastic limiter, composites."""

import numpy as np
import pytest

from repro.rheology import (
    ArrheniusViscosity,
    CompositeRheology,
    ConstantViscosity,
    DruckerPrager,
    Material,
)
from repro.rheology.composite import boussinesq_density
from repro.rheology.laws import (
    FrankKamenetskiiViscosity,
    PowerLawViscosity,
    strain_rate_invariant,
    strain_rate_tensor,
)


class TestInvariants:
    def test_strain_rate_tensor_symmetric(self, rng):
        H = rng.standard_normal((5, 3, 3))
        D = strain_rate_tensor(H)
        assert np.allclose(D, np.swapaxes(D, -1, -2))

    def test_invariant_of_simple_shear(self):
        # du_x/dy = 1 => D_xy = 1/2, J2 = 0.5*(2*(1/2)^2) = 1/4
        H = np.zeros((1, 3, 3))
        H[0, 0, 1] = 1.0
        eps = strain_rate_invariant(strain_rate_tensor(H))
        assert eps[0] == pytest.approx(0.5)

    def test_invariant_of_uniaxial(self):
        # D = diag(1, -1/2, -1/2): J2 = 0.5 * (1 + 1/4 + 1/4) = 0.75
        D = np.diag([1.0, -0.5, -0.5])[None]
        assert strain_rate_invariant(D)[0] == pytest.approx(np.sqrt(0.75))

    def test_floor_at_zero_strain(self):
        assert strain_rate_invariant(np.zeros((1, 3, 3)))[0] > 0


def fd_derivative(law, eps, **kw):
    """d eta / d J2 by central differences in J2 = eps^2."""
    h = 1e-6 * eps**2
    ep = np.sqrt(eps**2 + h)
    em = np.sqrt(eps**2 - h)
    return (law(ep, **kw)[0] - law(em, **kw)[0]) / (2 * h)


class TestLaws:
    def test_constant(self):
        law = ConstantViscosity(5.0)
        eta, deta = law(np.array([1.0, 2.0]))
        assert np.allclose(eta, 5.0)
        assert np.allclose(deta, 0.0)

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantViscosity(0.0)

    def test_power_law_newtonian_limit(self):
        law = PowerLawViscosity(2.0, n=1.0)
        eta, deta = law(np.array([0.1, 10.0]))
        assert np.allclose(eta, 2.0)
        assert np.allclose(deta, 0.0)

    def test_power_law_shear_thinning(self):
        law = PowerLawViscosity(1.0, n=3.0)
        eta, deta = law(np.array([0.5, 1.0, 2.0]))
        assert eta[0] > eta[1] > eta[2]
        assert np.all(deta < 0)

    @pytest.mark.parametrize("n", [1.5, 3.0, 5.0])
    def test_power_law_derivative_fd(self, n):
        law = PowerLawViscosity(2.0, n=n, eps0=0.7)
        eps = np.array([0.3, 1.0, 4.0])
        _, deta = law(eps)
        assert np.allclose(deta, fd_derivative(law, eps), rtol=1e-4)

    def test_arrhenius_temperature_weakening(self):
        law = ArrheniusViscosity(A=1e-16, n=3.5, E=530e3)
        eta_cold, _ = law(1e-15, temperature=800.0)
        eta_hot, _ = law(1e-15, temperature=1600.0)
        assert eta_cold > eta_hot

    def test_arrhenius_pressure_strengthening(self):
        law = ArrheniusViscosity(A=1e-16, n=3.5, E=530e3, V=1.5e-5)
        lo, _ = law(1e-15, pressure=0.0, temperature=1400.0)
        hi, _ = law(1e-15, pressure=1e9, temperature=1400.0)
        assert hi > lo

    def test_arrhenius_derivative_fd(self):
        law = ArrheniusViscosity(A=1e-16, n=3.5, E=530e3)
        eps = np.array([1e-15, 1e-14])
        _, deta = law(eps, temperature=1400.0)
        fd = fd_derivative(law, eps, temperature=1400.0)
        assert np.allclose(deta, fd, rtol=1e-3)

    def test_frank_kamenetskii(self):
        law = FrankKamenetskiiViscosity(10.0, theta=np.log(1e4))
        eta0, _ = law(1.0, temperature=0.0)
        eta1, _ = law(1.0, temperature=1.0)
        assert eta0 == pytest.approx(10.0)
        assert eta0 / eta1 == pytest.approx(1e4)


class TestDruckerPrager:
    def test_strength_increases_with_pressure(self):
        dp = DruckerPrager(cohesion=1.0, friction_deg=30.0)
        assert dp.strength(2.0) > dp.strength(0.0)

    def test_zero_friction_is_von_mises(self):
        dp = DruckerPrager(cohesion=2.0, friction_deg=0.0)
        assert dp.strength(5.0) == pytest.approx(2.0)

    def test_negative_pressure_clamped(self):
        dp = DruckerPrager(cohesion=1.0, friction_deg=30.0)
        assert dp.strength(-10.0) == pytest.approx(dp.strength(0.0))

    def test_softening(self):
        dp = DruckerPrager(1.0, 30.0, cohesion_weak=0.2, friction_weak_deg=10.0,
                           softening_strain=0.5)
        intact = dp.strength(1.0, plastic_strain=0.0)
        soft = dp.strength(1.0, plastic_strain=0.5)
        softer = dp.strength(1.0, plastic_strain=5.0)  # saturates
        assert intact > soft
        assert soft == pytest.approx(softer)

    def test_limit_caps_stress(self):
        dp = DruckerPrager(cohesion=1.0, friction_deg=0.0)
        eps = np.array([10.0])
        eta_eff, _, yielding = dp.limit(np.array([100.0]), eps, np.array([0.0]))
        # stress = 2 eta eps capped at tau_y = 1
        assert 2 * eta_eff[0] * eps[0] == pytest.approx(1.0)
        assert yielding[0]

    def test_no_yield_below_strength(self):
        dp = DruckerPrager(cohesion=100.0, friction_deg=0.0)
        eta_eff, _, yielding = dp.limit(
            np.array([1.0]), np.array([1.0]), np.array([0.0])
        )
        assert not yielding[0]
        assert eta_eff[0] == 1.0

    def test_plastic_derivative_fd(self):
        dp = DruckerPrager(cohesion=1.0, friction_deg=0.0)
        eps = np.array([5.0, 10.0])
        big = np.array([1e10, 1e10])
        _, deta, _ = dp.limit(big, eps, np.zeros(2))

        def plastic_eta(e):
            return dp.limit(big, e, np.zeros_like(e))[0]

        h = 1e-6 * eps**2
        fd = (plastic_eta(np.sqrt(eps**2 + h)) - plastic_eta(np.sqrt(eps**2 - h))) / (2 * h)
        assert np.allclose(deta, fd, rtol=1e-4)

    def test_tension_cutoff(self):
        dp = DruckerPrager(cohesion=0.0, friction_deg=30.0, tension_cutoff=0.1)
        assert dp.strength(0.0) == pytest.approx(0.1)


class TestComposite:
    def test_bounds_clip_and_zero_derivative(self):
        comp = CompositeRheology(PowerLawViscosity(1.0, n=3.0), eta_min=0.5,
                                 eta_max=2.0)
        eta, deta, _ = comp.evaluate(np.array([1e-6, 1.0, 1e6]))
        assert eta[0] == 2.0 and deta[0] == 0.0  # clipped at max
        assert eta[2] == 0.5 and deta[2] == 0.0  # clipped at min

    def test_plastic_branch_activates(self):
        comp = CompositeRheology(
            ConstantViscosity(100.0),
            DruckerPrager(cohesion=1.0, friction_deg=0.0),
        )
        eta, deta, yielding = comp.evaluate(np.array([10.0]), np.array([0.0]))
        assert yielding[0]
        assert deta[0] < 0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            CompositeRheology(ConstantViscosity(1.0), eta_min=2.0, eta_max=1.0)


class TestMaterial:
    def test_simple_factory(self):
        m = Material.simple("ambient", 1.0, 0.01)
        eta, _, _ = m.rheology.evaluate(np.array([1.0]))
        assert eta[0] == pytest.approx(0.01)
        assert m.density() == pytest.approx(1.0)

    def test_boussinesq(self):
        assert boussinesq_density(2.0, 0.1, 1.0) == pytest.approx(1.8)
        m = Material("hot", 2.0, CompositeRheology(ConstantViscosity(1.0)),
                     alpha=0.1)
        assert m.density(np.array([1.0]))[0] == pytest.approx(1.8)
        assert m.density() == pytest.approx(2.0)
