"""Smoothed aggregation AMG (the GAMG/ML substitute, SS III-C, Table IV)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import StructuredMesh, GaussQuadrature, assembly
from repro.mg.sa import (
    SAConfig,
    aggregate,
    block_strength_graph,
    isolated_nodes,
    rigid_body_modes,
    smoothed_aggregation,
    tentative_prolongator,
)
from repro.solvers import cg

from tests.conftest import no_slip_bc

QUAD = GaussQuadrature.hex(3)


def elasticity_system(shape=(4, 4, 4), seed=0):
    rng = np.random.default_rng(seed)
    mesh = StructuredMesh(shape, order=2)
    eta = np.exp(0.5 * rng.normal(size=(mesh.nel, QUAD.npoints)))
    A = assembly.assemble_viscous(mesh, eta, QUAD)
    bc = no_slip_bc(mesh)
    A_bc, _ = bc.eliminate(A, np.zeros(3 * mesh.nnodes))
    B = rigid_body_modes(mesh.coords, bc.mask)
    return mesh, A_bc, B, bc


class TestRigidBodyModes:
    def test_six_independent_modes(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        B = rigid_body_modes(mesh.coords)
        assert B.shape == (3 * mesh.nnodes, 6)
        assert np.linalg.matrix_rank(B) == 6

    def test_annihilated_by_unconstrained_operator(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta = np.ones((mesh.nel, QUAD.npoints))
        A = assembly.assemble_viscous(mesh, eta, QUAD)
        B = rigid_body_modes(mesh.coords)
        assert np.abs(A @ B).max() < 1e-10

    def test_bc_rows_zeroed(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        bc = no_slip_bc(mesh)
        B = rigid_body_modes(mesh.coords, bc.mask)
        assert np.abs(B[bc.mask]).max() == 0.0


class TestStrengthGraph:
    def test_symmetric_no_diagonal(self):
        _, A, _, _ = elasticity_system()
        S = block_strength_graph(A, 3, 0.01)
        assert (S != S.T).nnz == 0
        assert np.all(S.diagonal() == 0)

    def test_higher_threshold_fewer_edges(self):
        _, A, _, _ = elasticity_system()
        S1 = block_strength_graph(A, 3, 0.01)
        S2 = block_strength_graph(A, 3, 0.2)
        assert S2.nnz <= S1.nnz

    def test_scalar_block_size(self):
        A = sp.csr_matrix(np.array([[2.0, -1, 0], [-1, 2, -0.001], [0, -0.001, 2]]))
        S = block_strength_graph(A, 1, 0.01)
        assert S[0, 1] and not S[1, 2]


class TestIsolatedNodes:
    def test_detects_identity_rows(self):
        A = sp.csr_matrix(np.diag([1.0, 2.0, 3.0]))
        A = A.tolil()
        A[1, 2] = 0.5
        A[2, 1] = 0.5
        A = A.tocsr()
        iso = isolated_nodes(A, 1)
        assert iso.tolist() == [True, False, False]

    def test_dirichlet_rows_isolated(self):
        _, A, _, bc = elasticity_system((2, 2, 2))
        iso = isolated_nodes(A, 3)
        # fully constrained nodes are isolated
        node_bc = bc.mask.reshape(-1, 3).all(axis=1)
        assert np.array_equal(iso, node_bc)


class TestAggregation:
    def test_all_nonskipped_assigned(self):
        _, A, _, _ = elasticity_system()
        S = block_strength_graph(A, 3, 0.01)
        skip = isolated_nodes(A, 3)
        agg = aggregate(S, skip)
        assert np.all(agg[~skip] >= 0)
        assert np.all(agg[skip] == -1)

    def test_substantial_coarsening(self):
        _, A, _, _ = elasticity_system()
        S = block_strength_graph(A, 3, 0.01)
        skip = isolated_nodes(A, 3)
        agg = aggregate(S, skip)
        n_active = int((~skip).sum())
        assert agg.max() + 1 < n_active / 5

    def test_aggregates_contiguous_ids(self):
        _, A, _, _ = elasticity_system((2, 2, 2))
        S = block_strength_graph(A, 3, 0.01)
        agg = aggregate(S, isolated_nodes(A, 3))
        used = np.unique(agg[agg >= 0])
        assert np.array_equal(used, np.arange(used.size))


class TestTentativeProlongator:
    def test_reproduces_near_nullspace(self):
        """P_tent exactly interpolates the near-nullspace: B = P B_c."""
        _, A, B, _ = elasticity_system((2, 2, 2))
        S = block_strength_graph(A, 3, 0.01)
        skip = isolated_nodes(A, 3)
        agg = aggregate(S, skip)
        P, Bc = tentative_prolongator(agg, B, 3)
        # on non-skipped dofs, P @ Bc reproduces B
        active = np.repeat(~skip, 3)
        assert np.abs((P @ Bc - B)[active]).max() < 1e-10

    def test_orthonormal_columns_per_aggregate(self):
        _, A, B, _ = elasticity_system((2, 2, 2))
        S = block_strength_graph(A, 3, 0.01)
        agg = aggregate(S, isolated_nodes(A, 3))
        P, _ = tentative_prolongator(agg, B, 3)
        G = (P.T @ P).toarray()
        assert np.allclose(G, np.eye(G.shape[0]), atol=1e-10)


class TestHierarchy:
    def test_preconditions_cg(self):
        _, A, B, bc = elasticity_system()
        sa = smoothed_aggregation(A, B, SAConfig(max_coarse=200))
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        b[bc.mask] = 0.0
        res = cg(lambda v: A @ v, b, M=sa, rtol=1e-8, maxiter=100)
        assert res.converged
        assert res.iterations < 30

    def test_unsmoothed_prolongator_worse(self):
        _, A, B, bc = elasticity_system()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        b[bc.mask] = 0.0
        its = {}
        for smooth in (True, False):
            sa = smoothed_aggregation(
                A, B, SAConfig(max_coarse=200, prolongator_smooth=smooth)
            )
            its[smooth] = cg(lambda v: A @ v, b, M=sa, rtol=1e-8,
                             maxiter=200).iterations
        assert its[True] <= its[False]

    def test_scalar_problem_default_nullspace(self):
        mesh = StructuredMesh((6, 6, 6), order=1)
        A = assembly.assemble_poisson(mesh)
        from repro.fem.bc import DirichletBC, boundary_nodes

        bc = DirichletBC(mesh.nnodes)
        for f in ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax"):
            bc.add(boundary_nodes(mesh, f), 0.0)
        bc.finalize()
        A_bc, _ = bc.eliminate(A, np.zeros(mesh.nnodes))
        sa = smoothed_aggregation(A_bc, config=SAConfig(block_size=1, max_coarse=50))
        rng = np.random.default_rng(1)
        b = rng.standard_normal(mesh.nnodes)
        b[bc.mask] = 0.0
        res = cg(lambda v: A_bc @ v, b, M=sa, rtol=1e-8, maxiter=100)
        assert res.converged

    def test_drop_tolerance_sparsifies(self):
        _, A, B, _ = elasticity_system()
        plain = smoothed_aggregation(A, B, SAConfig(max_coarse=200))
        dropped = smoothed_aggregation(A, B, SAConfig(max_coarse=200, drop_tol=0.05))
        # compare prolongator nnz through the level operators
        nnz_plain = sum(l.prolong.nnz for l in plain.levels if l.prolong is not None)
        nnz_drop = sum(l.prolong.nnz for l in dropped.levels if l.prolong is not None)
        assert nnz_drop <= nnz_plain

    @pytest.mark.parametrize("coarse", ["lu", "bjacobi-lu", "fgmres-ilu"])
    def test_coarse_solver_options(self, coarse):
        _, A, B, bc = elasticity_system((2, 2, 2))
        sa = smoothed_aggregation(
            A, B, SAConfig(max_coarse=100, coarse_solver=coarse)
        )
        rng = np.random.default_rng(2)
        b = rng.standard_normal(A.shape[0])
        b[bc.mask] = 0.0
        res = cg(lambda v: A @ v, b, M=sa, rtol=1e-6, maxiter=200)
        assert res.converged

    def test_custom_smoother_factory(self):
        """The SAML-ii configuration: Krylov smoothing inside the cycle."""
        from repro.solvers.krylov import fgmres
        from repro.solvers.relaxation import JacobiPreconditioner

        class KrylovSmoother:
            def __init__(self, apply_k, diag, A):
                self.apply = apply_k
                self.M = JacobiPreconditioner(diag)

            def smooth(self, b, x):
                return fgmres(self.apply, b, x0=x, M=self.M, rtol=1e-14,
                              maxiter=2).x

        _, A, B, bc = elasticity_system((2, 2, 2))
        sa = smoothed_aggregation(
            A, B, SAConfig(max_coarse=100, smoother_factory=KrylovSmoother)
        )
        rng = np.random.default_rng(3)
        b = rng.standard_normal(A.shape[0])
        b[bc.mask] = 0.0
        from repro.solvers import gcr

        res = gcr(lambda v: A @ v, b, M=sa, rtol=1e-6, maxiter=200)
        assert res.converged
