"""Ensemble service: job model, scheduler policy, and recovery contracts.

The adversarial tests at the bottom drive real subprocess batteries with
injected hangs, crashes, and corrupted checkpoints, and assert the two
contracts everything else rests on:

* accounting -- every submitted job reaches a terminal state, none lost,
  none double-counted;
* determinism -- a killed-and-resumed (or corrupted-and-restarted) job
  finishes with a state digest bit-identical to an uninterrupted run, so
  cache hits can stand in for recomputation.
"""

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import flight, metrics
from repro.resilience.reasons import BreakdownError, ConvergedReason
from repro.serve import (
    REASON_HANG,
    REASON_QUARANTINED,
    JobRecord,
    JobSpec,
    JobState,
    ResultStore,
    Scheduler,
    ServeConfig,
    backoff_delay,
    run_battery,
    state_digest,
)
from repro.serve.jobs import TERMINAL_STATES
from repro.sim import checkpoint, timeloop


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    flight.disarm()


# tiny sinker every battery test shares: ~0.4 s/step, 2 mg levels
SC = {"shape": [4, 4, 4], "n_spheres": 1}
SIM = {"picard_only": True, "stokes": {"mg_levels": 2, "rtol": 1e-4}}


def sinker_spec(name, seed, nsteps=3, faults=None, **kw):
    return JobSpec(name=name, scenario="sinker", scenario_config=SC,
                   sim_config=SIM, nsteps=nsteps, seed=seed,
                   faults=faults or {}, **kw)


# --------------------------------------------------------------------- #
# job model
# --------------------------------------------------------------------- #
class TestJobIdentity:
    def test_identity_is_physics_only(self):
        base = sinker_spec("a", seed=1)
        hinted = sinker_spec(
            "b", seed=1, priority=5, group="g", workers=8, use_cache=False,
            faults={"hang": {"after_step": 1}},
        )
        assert base.config_hash() == hinted.config_hash()

    @pytest.mark.parametrize("change", [
        {"seed": 2}, {"nsteps": 4}, {"dt": 0.5},
        {"scenario": "rifting"},
        {"scenario_config": {"shape": [4, 4, 5]}},
        {"sim_config": {"picard_only": False}},
    ])
    def test_physics_changes_change_the_hash(self, change):
        base = sinker_spec("a", seed=1)
        kw = dict(name="a", scenario="sinker", scenario_config=SC,
                  sim_config=SIM, nsteps=3, seed=1)
        kw.update(change)
        assert JobSpec(**kw).config_hash() != base.config_hash()

    def test_name_does_not_change_the_hash(self):
        assert (sinker_spec("x", seed=1).config_hash()
                == sinker_spec("y", seed=1).config_hash())

    def test_wire_round_trip(self):
        spec = sinker_spec("a", seed=3, faults={"crash_after_steps": 2},
                           priority=2, group="g")
        back = JobSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
        assert back == spec

    def test_wire_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            JobSpec.from_wire({"name": "a", "bogus": 1})

    def test_inline_callable_cannot_serialize(self):
        with pytest.raises(ValueError, match="inline"):
            JobSpec(name="a", fn=lambda: 1).to_wire()

    def test_inline_callable_cache_policy(self):
        assert not JobSpec(name="a", fn=lambda: 1).cache_allowed
        assert JobSpec(name="a", fn=lambda: 1, cache_key="k").cache_allowed


class TestStateMachine:
    def test_happy_path(self):
        rec = JobRecord(spec=sinker_spec("a", seed=1))
        for state in (JobState.RUNNING, JobState.RETRYING,
                      JobState.RUNNING, JobState.DONE):
            rec.transition(state)
        assert rec.terminal

    @pytest.mark.parametrize("path,bad", [
        ((), JobState.RETRYING),                      # QUEUED -/-> RETRYING
        ((JobState.RUNNING, JobState.DONE), JobState.RUNNING),
        ((JobState.RUNNING, JobState.FAILED), JobState.RETRYING),
        ((JobState.RUNNING,), JobState.QUEUED),
    ])
    def test_illegal_transitions_raise(self, path, bad):
        rec = JobRecord(spec=sinker_spec("a", seed=1))
        for state in path:
            rec.transition(state)
        with pytest.raises(ValueError, match="illegal transition"):
            rec.transition(bad)

    def test_terminal_states_are_sinks(self):
        for terminal in TERMINAL_STATES:
            for target in JobState:
                rec = JobRecord(spec=sinker_spec("a", seed=1))
                rec.state = terminal
                with pytest.raises(ValueError):
                    rec.transition(target)


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay("h", 2) == backoff_delay("h", 2)

    def test_grows_then_caps(self):
        base = [backoff_delay("h", a, base=0.1, factor=2.0, cap=0.8)
                for a in range(1, 8)]
        # jitter is at most +100%, so the capped tail stays within 2x cap
        assert all(d <= 1.6 for d in base)
        # un-jittered growth: strip jitter by dividing pairs of attempts
        assert backoff_delay("h", 1) < 2 * backoff_delay("h", 4)

    def test_jitter_decorrelates_hashes(self):
        ds = {backoff_delay(f"h{i}", 1) for i in range(16)}
        assert len(ds) > 1


# --------------------------------------------------------------------- #
# results store
# --------------------------------------------------------------------- #
class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", {"digest": "d", "steps": 3})
        doc = store.get("abc")
        assert doc["digest"] == "d" and doc["schema"]

    def test_corrupt_result_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.result_path("abc")
        with open(path, "w") as fh:
            fh.write('{"truncated": ')
        assert store.get("abc") is None
        assert not os.path.exists(path)

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        with open(store.result_path("abc"), "w") as fh:
            json.dump({"schema": "something/else"}, fh)
        assert store.get("abc") is None

    def test_checkpoint_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.has_checkpoint("abc")
        with open(store.checkpoint_path("abc"), "wb") as fh:
            fh.write(b"x")
        assert store.has_checkpoint("abc")
        store.clear_checkpoint("abc")
        assert not store.has_checkpoint("abc")


# --------------------------------------------------------------------- #
# scheduler policy (no subprocesses)
# --------------------------------------------------------------------- #
class TestInlinePolicy:
    def test_runs_in_submit_order_and_collects_values(self):
        order = []

        def mk(i):
            def fn():
                order.append(i)
                return i * i
            return fn

        report = run_battery(
            [JobSpec(name=f"j{i}", fn=mk(i), use_cache=False,
                     priority=10 - i) for i in range(4)],
            ServeConfig(isolation="inline"),
        )
        assert order == [0, 1, 2, 3]   # submit order, priority ignored
        assert report.values() == {f"j{i}": i * i for i in range(4)}
        assert report.all_done and report.all_terminal

    def test_retry_budget_exhaustion_keeps_breakdown_reason(self):
        calls = []

        def fail():
            calls.append(1)
            raise BreakdownError("diverged",
                                 reason=ConvergedReason.DIVERGED_NAN)

        report = run_battery(
            [JobSpec(name="bad", fn=fail, use_cache=False)],
            ServeConfig(isolation="inline", max_retries=1,
                        quarantine_after=5, backoff_base=0.0,
                        backoff_max=0.0),
        )
        rec = report.record("bad")
        assert rec.state is JobState.FAILED
        assert rec.reason == "DIVERGED_NAN"
        assert len(calls) == 2            # initial attempt + one retry
        assert isinstance(rec.exception, BreakdownError)
        assert report.all_terminal and not report.all_done

    def test_circuit_breaker_quarantines_config_and_twins(self):
        def fail():
            raise RuntimeError("boom")

        specs = [JobSpec(name="bad1", fn=fail, cache_key="same"),
                 JobSpec(name="bad2", fn=fail, cache_key="same"),
                 JobSpec(name="ok", fn=lambda: 42, use_cache=False)]
        report = run_battery(
            specs,
            ServeConfig(isolation="inline", max_retries=5,
                        quarantine_after=2, backoff_base=0.0,
                        backoff_max=0.0),
        )
        bad1, bad2 = report.record("bad1"), report.record("bad2")
        # breaker opened after 2 consecutive failures of the same config:
        # bad1 quarantined mid-retry, its twin quarantined without running
        assert bad1.state is JobState.QUARANTINED
        assert bad1.reason == REASON_QUARANTINED
        assert bad2.state is JobState.QUARANTINED
        assert len(bad2.attempts) == 0
        assert report.record("ok").value == 42
        assert report.all_terminal

    def test_failure_counts_are_per_config_not_global(self):
        seen = []

        def fail(tag):
            def fn():
                seen.append(tag)
                raise RuntimeError(tag)
            return fn

        report = run_battery(
            [JobSpec(name="a", fn=fail("a"), cache_key="ka"),
             JobSpec(name="b", fn=fail("b"), cache_key="kb")],
            ServeConfig(isolation="inline", max_retries=0,
                        quarantine_after=2),
        )
        # one failure each: neither config reaches the breaker threshold
        assert report.record("a").state is JobState.FAILED
        assert report.record("b").state is JobState.FAILED

    def test_inline_cache_hit_for_keyed_callables(self, tmp_path):
        calls = []

        def fn():
            calls.append(1)
            return {"x": 7}

        cfg = ServeConfig(isolation="inline", store_dir=str(tmp_path))
        run_battery([JobSpec(name="one", fn=fn, cache_key="k")], cfg)
        rep2 = run_battery([JobSpec(name="two", fn=fn, cache_key="k")], cfg)
        assert len(calls) == 1
        assert rep2.record("two").cache_hit

    def test_inline_faulted_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="isolation"):
            run_battery([sinker_spec("a", seed=1,
                                     faults={"crash_after_steps": 1})],
                        ServeConfig(isolation="inline"))


class TestWorkerGrants:
    def test_shrinks_under_pressure_floor_one(self):
        sched = Scheduler(ServeConfig(total_workers=4))
        a = sched.submit(sinker_spec("a", seed=1, workers=3))
        a.transition(JobState.RUNNING)
        a.granted_workers = 3
        b = sched.submit(sinker_spec("b", seed=2, workers=4))
        assert sched._grant_workers(b) == 1      # 4 - 3 = 1 free
        c = sched.submit(sinker_spec("c", seed=3, workers=4))
        b.transition(JobState.RUNNING)
        b.granted_workers = 1
        assert sched._grant_workers(c) == 1      # floor: never reject

    def test_grant_respects_request_when_free(self):
        sched = Scheduler(ServeConfig(total_workers=8))
        rec = sched.submit(sinker_spec("a", seed=1, workers=3))
        assert sched._grant_workers(rec) == 3

    def test_default_request_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        sched = Scheduler(ServeConfig(total_workers=16))
        rec = sched.submit(sinker_spec("a", seed=1))
        assert sched._grant_workers(rec) == 5


class TestEligibility:
    def test_priority_then_fair_share_then_submit_order(self):
        sched = Scheduler(ServeConfig())
        lo = sched.submit(sinker_spec("lo", seed=1, priority=0, group="g1"))
        hi = sched.submit(sinker_spec("hi", seed=2, priority=9, group="g1"))
        other = sched.submit(sinker_spec("other", seed=3, priority=0,
                                         group="g2"))
        # one g1 job already running: fair share prefers g2 among equals
        runner = sched.submit(sinker_spec("runner", seed=4, group="g1"))
        runner.transition(JobState.RUNNING)
        names = [r.spec.name for r in sched._eligible()]
        assert names == ["hi", "other", "lo"]

    def test_backoff_delays_eligibility(self):
        sched = Scheduler(ServeConfig())
        rec = sched.submit(sinker_spec("a", seed=1))
        rec.transition(JobState.RUNNING)
        rec.attempt_index = 1
        rec.transition(JobState.RETRYING)
        rec.not_before = time.monotonic() + 60.0
        assert sched._eligible() == []
        rec.not_before = time.monotonic() - 1.0
        assert [r.spec.name for r in sched._eligible()] == ["a"]

    def test_twin_waits_for_leader(self):
        sched = Scheduler(ServeConfig())
        leader = sched.submit(sinker_spec("leader", seed=1))
        twin = sched.submit(sinker_spec("twin", seed=1))
        assert [r.spec.name for r in sched._eligible()] == ["leader"]
        leader.transition(JobState.RUNNING)
        assert sched._eligible() == []
        # leader settles: the twin becomes the config's new leader
        leader.transition(JobState.DONE)
        assert [r.spec.name for r in sched._eligible()] == ["twin"]


# --------------------------------------------------------------------- #
# timeloop heartbeats and checkpoint round-trip (serve's substrate)
# --------------------------------------------------------------------- #
class TestHeartbeatsAndCheckpoint:
    def test_step_listener_fires_per_committed_step(self):
        from repro.serve.worker import build_simulation

        obs.enable()
        beats = []
        listener = timeloop.add_step_listener(beats.append)
        try:
            sim = build_simulation(sinker_spec("a", seed=1, nsteps=2))
            sim.step()
            sim.step()
        finally:
            timeloop.remove_step_listener(listener)
        assert [b["step"] for b in beats] == [1, 2]
        assert all(b["seconds"] > 0 and b["dt"] > 0 for b in beats)

    def test_remove_listener_is_idempotent(self):
        fn = lambda beat: None   # noqa: E731
        timeloop.remove_step_listener(fn)   # absent: no-op
        timeloop.add_step_listener(fn)
        timeloop.remove_step_listener(fn)
        timeloop.remove_step_listener(fn)

    def test_checkpoint_round_trips_rollback_engine_state(self, tmp_path):
        from repro.serve.worker import build_simulation

        sim = build_simulation(sinker_spec("a", seed=1))
        sim.step()
        sim._dt_scale = 0.25
        sim._clean_steps = 2
        path = str(tmp_path / "cp.npz")
        checkpoint.save_checkpoint(path, sim)
        other = build_simulation(sinker_spec("a", seed=1))
        checkpoint.load_checkpoint(path, other)
        assert other._dt_scale == 0.25
        assert other._clean_steps == 2
        assert state_digest(other) == state_digest(sim)


# --------------------------------------------------------------------- #
# flight-recorder dump naming (shared-directory collisions)
# --------------------------------------------------------------------- #
class TestFlightDumpNames:
    def _arm(self, tmp_path):
        obs.enable()
        return flight.arm(capacity=4, directory=tmp_path)

    def test_legacy_name_without_config_hash(self, tmp_path):
        rec = self._arm(tmp_path)
        rec.record_step({"step": 1})
        path = rec.dump("manual")
        assert os.path.basename(path) == "FLIGHT_manual_001.json"

    def test_config_hash_prefixes_the_dump_name(self, tmp_path):
        rec = self._arm(tmp_path)
        metrics.set_manifest(config_hash="deadbeefcafe0123")
        rec.record_step({"step": 1})
        path = rec.dump("rollback")
        assert os.path.basename(path) == \
            "FLIGHT_deadbeefcafe_rollback_001.json"

    def test_two_jobs_sharing_a_directory_do_not_collide(self, tmp_path):
        # job 1 dumps, then a different run identity dumps into the same
        # directory: distinct filenames, nothing overwritten
        rec1 = self._arm(tmp_path)
        metrics.set_manifest(config_hash="aaaaaaaaaaaaaaaa")
        p1 = rec1.dump("rollback")
        obs.reset()
        obs.enable()
        rec2 = flight.arm(capacity=4, directory=tmp_path)
        metrics.set_manifest(config_hash="bbbbbbbbbbbbbbbb")
        p2 = rec2.dump("rollback")
        assert p1 != p2 and os.path.exists(p1) and os.path.exists(p2)

    def test_existing_dump_is_never_clobbered(self, tmp_path):
        rec = self._arm(tmp_path)
        taken = tmp_path / "FLIGHT_manual_001.json"
        taken.write_text("precious")
        path = rec.dump("manual")
        assert os.path.basename(path) == "FLIGHT_manual_002.json"
        assert taken.read_text() == "precious"


# --------------------------------------------------------------------- #
# adversarial subprocess batteries (the acceptance scenario)
# --------------------------------------------------------------------- #
def battery_config(store, **kw):
    base = dict(max_jobs=2, step_timeout=5.0, startup_timeout=60.0,
                checkpoint_every=1, total_workers=2, store_dir=str(store))
    base.update(kw)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def fault_battery(tmp_path_factory):
    """One shared battery: clean + hang + crash + corrupt + twin."""
    store = tmp_path_factory.mktemp("serve-store")
    specs = [
        sinker_spec("clean", seed=11),
        sinker_spec("hangs", seed=12,
                    faults={"hang": {"after_step": 2, "seconds": 600}}),
        sinker_spec("crashes", seed=13, faults={"crash_after_steps": 2}),
        sinker_spec("twin-of-hangs", seed=12),
        sinker_spec("corrupt", seed=14,
                    faults={"crash_after_steps": {"steps": 2},
                            "corrupt_checkpoint": {}}),
    ]
    report = run_battery(specs, battery_config(store))
    return report, store


class TestFaultBattery:
    def test_accounting_every_job_terminal_none_lost(self, fault_battery):
        report, _ = fault_battery
        assert report.all_terminal
        assert len(report.records) == 5
        assert report.counts["done"] == 5

    def test_watchdog_kills_and_requeues_the_hang(self, fault_battery):
        report, _ = fault_battery
        rec = report.record("hangs")
        outcomes = [a["outcome"] for a in rec.attempts]
        assert outcomes == ["hang", "done"]
        assert rec.attempts[0]["reason"] == REASON_HANG
        # the hang fired after step 2's heartbeat: the watchdog saw a
        # live worker first, then silence
        assert rec.attempts[0]["beats"] >= 1
        assert rec.state is JobState.DONE and rec.reason is None

    def test_killed_job_resumed_from_checkpoint(self, fault_battery):
        report, _ = fault_battery
        assert report.record("hangs").resumed_from >= 1
        assert report.record("crashes").resumed_from >= 1

    def test_crash_is_classified_as_crash(self, fault_battery):
        report, _ = fault_battery
        rec = report.record("crashes")
        assert [a["outcome"] for a in rec.attempts] == ["crash", "done"]

    def test_resumed_runs_are_bit_identical(self, fault_battery, tmp_path):
        report, _ = fault_battery
        # independent uninterrupted runs of the same physics, fresh store
        clean = run_battery(
            [sinker_spec("ref12", seed=12), sinker_spec("ref13", seed=13),
             sinker_spec("ref14", seed=14)],
            battery_config(tmp_path / "ref-store"),
        )
        assert (report.record("hangs").result["digest"]
                == clean.record("ref12").result["digest"])
        assert (report.record("crashes").result["digest"]
                == clean.record("ref13").result["digest"])
        assert (report.record("corrupt").result["digest"]
                == clean.record("ref14").result["digest"])

    def test_corrupt_checkpoint_forces_validated_fresh_start(
            self, fault_battery):
        report, _ = fault_battery
        rec = report.record("corrupt")
        # resume found the truncated archive, rejected it, started fresh
        assert rec.checkpoint_corrupt
        assert rec.resumed_from == 0
        assert rec.state is JobState.DONE

    def test_twin_waits_then_hits_cache_bit_exact(self, fault_battery):
        report, _ = fault_battery
        twin = report.record("twin-of-hangs")
        assert twin.cache_hit and twin.state is JobState.DONE
        assert len(twin.attempts) == 0    # never ran
        assert (twin.result["digest"]
                == report.record("hangs").result["digest"])

    def test_second_battery_is_served_from_cache(self, fault_battery):
        report, store = fault_battery
        t0 = time.monotonic()
        again = run_battery([sinker_spec("clean-again", seed=11)],
                            battery_config(store))
        rec = again.record("clean-again")
        assert rec.cache_hit
        assert rec.result["digest"] == report.record("clean").result["digest"]
        assert time.monotonic() - t0 < 1.0   # no subprocess, no solve

    def test_done_jobs_dropped_their_checkpoints(self, fault_battery):
        report, store = fault_battery
        store = ResultStore(str(store))
        for rec in report.records:
            assert not store.has_checkpoint(rec.config_hash)


class TestRetryExhaustionAndQuarantine:
    def test_persistent_solver_breakdown_fails_with_reason(self, tmp_path):
        # poison fires on every attempt (once=False): the retry budget
        # burns down and the job fails with the solver's own reason code
        spec = sinker_spec(
            "poisoned", seed=21, nsteps=2,
            faults={"poison_viscosity": {"mode": "nan", "once": False}},
        )
        report = run_battery(
            [spec],
            battery_config(tmp_path / "store", max_retries=1,
                           quarantine_after=5, backoff_base=0.01,
                           backoff_max=0.05),
        )
        rec = report.record("poisoned")
        assert rec.state is JobState.FAILED
        assert len(rec.attempts) == 2       # budget: 1 + 1 retry
        assert rec.reason and "JOB" not in rec.reason  # a solver reason
        assert report.all_terminal

    def test_repeat_offender_config_is_quarantined(self, tmp_path):
        spec = sinker_spec(
            "offender", seed=22, nsteps=2,
            faults={"poison_viscosity": {"mode": "nan", "once": False}},
        )
        twin = sinker_spec(
            "offender-twin", seed=22, nsteps=2,
            faults={"poison_viscosity": {"mode": "nan", "once": False}},
        )
        report = run_battery(
            [spec, twin],
            battery_config(tmp_path / "store", max_retries=5,
                           quarantine_after=2, backoff_base=0.01,
                           backoff_max=0.05),
        )
        rec = report.record("offender")
        assert rec.state is JobState.QUARANTINED
        assert rec.reason == REASON_QUARANTINED
        assert len(rec.attempts) == 2       # breaker opened, budget unspent
        # the queued twin never launched: breaker already open for the hash
        twin_rec = report.record("offender-twin")
        assert twin_rec.state is JobState.QUARANTINED
        assert len(twin_rec.attempts) == 0


class TestAcceptanceBattery:
    def test_twenty_jobs_with_faults_all_terminal(self, tmp_path):
        """The issue's acceptance scenario, shrunk to CI scale."""
        specs = []
        for i in range(16):
            specs.append(sinker_spec(f"job{i:02d}", seed=30 + i % 8,
                                     nsteps=2, group=f"g{i % 3}",
                                     priority=i % 2))
        specs.append(sinker_spec(
            "job-hang", seed=40, nsteps=2,
            faults={"hang": {"after_step": 1, "seconds": 600}}))
        specs.append(sinker_spec(
            "job-crash", seed=41, nsteps=2,
            faults={"crash_after_steps": 1}))
        specs.append(sinker_spec(
            "job-corrupt", seed=42, nsteps=3,
            faults={"crash_after_steps": {"steps": 2},
                    "corrupt_checkpoint": {}}))
        specs.append(sinker_spec("job-twin", seed=40, nsteps=2))
        assert len(specs) == 20

        # a wide step timeout: with 4 concurrent workers on a loaded CI
        # box a healthy step can take seconds, and a watchdog false
        # positive here burns retry budget toward quarantine.  Only the
        # injected 600 s hang should trip it.
        report = run_battery(
            specs, battery_config(tmp_path / "store", max_jobs=4,
                                  step_timeout=10.0))
        # accounting: all 20 terminal, each exactly once, none lost
        assert report.all_terminal
        assert len(report.records) == 20
        names = [r.spec.name for r in report.records]
        assert len(set(names)) == 20
        assert report.counts["done"] == 20

        # identical seeds are computed once and cache-shared
        by_seed = {}
        for rec in report.records:
            by_seed.setdefault(
                (rec.spec.seed, rec.spec.nsteps), set()
            ).add(rec.result["digest"])
        assert all(len(d) == 1 for d in by_seed.values())
        ran = [r for r in report.records if not r.cache_hit]
        hits = [r for r in report.records if r.cache_hit]
        assert len(hits) >= 8      # 16 jobs share 8 seeds + the twin

        # recovery: faulted jobs recovered and match their clean twins
        assert report.record("job-hang").attempts[0]["outcome"] == "hang"
        assert report.record("job-crash").attempts[0]["outcome"] == "crash"
        assert report.record("job-corrupt").checkpoint_corrupt
        twin = report.record("job-twin")
        assert (twin.result["digest"]
                == report.record("job-hang").result["digest"])


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCLI:
    def test_battery_file_end_to_end(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        battery = {
            "serve": {"max_jobs": 2, "checkpoint_every": 1,
                      "store_dir": str(tmp_path / "store"),
                      "step_timeout": 30.0},
            "jobs": [
                {"name": "a", "scenario": "sinker",
                 "scenario_config": SC, "sim_config": SIM,
                 "nsteps": 2, "seed": 51},
                {"name": "a-twin", "scenario": "sinker",
                 "scenario_config": SC, "sim_config": SIM,
                 "nsteps": 2, "seed": 51},
            ],
        }
        path = tmp_path / "battery.json"
        path.write_text(json.dumps(battery))
        out_json = tmp_path / "report.json"
        rc = main([str(path), "--require-done", "--json", str(out_json)])
        assert rc == 0
        doc = json.loads(out_json.read_text())
        assert doc["all_terminal"] and doc["counts"]["done"] == 2
        states = {j["name"]: j for j in doc["jobs"]}
        assert states["a-twin"]["cache_hit"]
        assert "a-twin" in capsys.readouterr().out

    def test_cli_flags_override_file(self, tmp_path):
        from repro.serve.__main__ import main

        path = tmp_path / "battery.json"
        path.write_text(json.dumps({"jobs": [
            {"name": "a", "scenario": "sinker", "scenario_config": SC,
             "sim_config": SIM, "nsteps": 1, "seed": 52},
        ]}))
        rc = main([str(path), "--store", str(tmp_path / "s"),
                   "--max-jobs", "1", "--max-retries", "0"])
        assert rc == 0

    def test_malformed_battery_is_an_error(self, tmp_path):
        from repro.serve.__main__ import main

        path = tmp_path / "battery.json"
        path.write_text(json.dumps({"not-jobs": []}))
        assert main([str(path)]) == 2
