"""Simulation drivers: sinker and rifting models, field evaluation."""

import numpy as np
import pytest

from repro.fem import StructuredMesh, GaussQuadrature
from repro.sim import (
    Simulation,
    SimulationConfig,
    make_rifting,
    make_sinker,
    pressure_at_points,
    pressure_at_quadrature,
    strain_invariant_at_points,
    strain_invariant_at_quadrature,
)
from repro.sim.rifting import RiftingConfig, rifting_materials
from repro.sim.sinker import (
    SinkerConfig,
    place_spheres,
    sinker_stokes_problem,
)
from repro.stokes import StokesConfig, solve_stokes

QUAD = GaussQuadrature.hex(3)


class TestFieldEvaluation:
    def test_strain_invariant_pure_shear(self, rng):
        mesh = StructuredMesh((2, 2, 2), order=2)
        u = np.zeros(3 * mesh.nnodes)
        u[0::3] = mesh.coords[:, 1]  # du_x/dy = 1 -> eps_II = 1/2
        eps_q = strain_invariant_at_quadrature(mesh, u, QUAD)
        assert np.allclose(eps_q, 0.5, atol=1e-12)
        els = rng.integers(0, mesh.nel, size=10)
        xi = rng.uniform(-0.9, 0.9, size=(10, 3))
        eps_p = strain_invariant_at_points(mesh, u, els, xi)
        assert np.allclose(eps_p, 0.5, atol=1e-12)

    def test_pressure_evaluation_consistent(self, rng):
        """P1disc coefficients evaluated at points/quadrature reproduce the
        linear-per-element field."""
        mesh = StructuredMesh((2, 2, 2), order=2)
        p = rng.standard_normal(4 * mesh.nel)
        pq = pressure_at_quadrature(mesh, p, QUAD)
        # compare one quadrature point against a manual basis evaluation
        _, _, xq = mesh.geometry_at(QUAD)
        cent, h = mesh.element_centroids_and_extents()
        n, q = 3, 7
        psi = np.array([
            1.0,
            (xq[n, q, 0] - cent[n, 0]) / h[n, 0],
            (xq[n, q, 1] - cent[n, 1]) / h[n, 1],
            (xq[n, q, 2] - cent[n, 2]) / h[n, 2],
        ])
        assert pq[n, q] == pytest.approx(psi @ p[4 * n: 4 * n + 4])

    def test_point_and_quadrature_pressure_agree(self, rng):
        mesh = StructuredMesh((2, 2, 2), order=2)
        p = rng.standard_normal(4 * mesh.nel)
        els = np.array([3])
        xi = np.zeros((1, 3))  # element center
        pp = pressure_at_points(mesh, p, els, xi)
        cent, h = mesh.element_centroids_and_extents()
        # at the centroid only the constant mode contributes (regular mesh)
        assert pp[0] == pytest.approx(p[12], abs=1e-12)


class TestSinker:
    def test_sphere_placement_non_intersecting(self):
        cfg = SinkerConfig(n_spheres=8, radius=0.1, seed=3)
        centers = place_spheres(cfg)
        assert centers.shape == (8, 3)
        for i in range(8):
            for j in range(i + 1, 8):
                assert np.linalg.norm(centers[i] - centers[j]) >= 2 * cfg.radius
        assert centers.min() >= cfg.radius
        assert centers.max() <= 1 - cfg.radius

    def test_impossible_placement_raises(self):
        with pytest.raises(RuntimeError):
            place_spheres(SinkerConfig(n_spheres=200, radius=0.2))

    def test_stokes_problem_coefficients(self):
        cfg = SinkerConfig(shape=(4, 4, 4), delta_eta=1e3, n_spheres=2,
                           radius=0.15)
        pb = sinker_stokes_problem(cfg)
        assert pb.eta_q.min() == pytest.approx(1e-3)
        assert pb.eta_q.max() == pytest.approx(1.0)
        assert set(np.round(np.unique(pb.rho_q), 6)) == {1.0, 1.2}

    def test_linear_solve_converges(self):
        cfg = SinkerConfig(shape=(4, 4, 4), delta_eta=1e2, n_spheres=2,
                           radius=0.15)
        pb = sinker_stokes_problem(cfg)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu"))
        assert sol.converged
        # spheres are denser: net downward flow through the midplane center
        mesh = pb.mesh
        assert np.abs(sol.u).max() > 0

    def test_simulation_step(self):
        cfg = SinkerConfig(shape=(4, 4, 4), n_spheres=2, radius=0.15,
                           delta_eta=1e2)
        sim = make_sinker(cfg, SimulationConfig(
            stokes=StokesConfig(mg_levels=2, coarse_solver="lu"),
            max_newton=2,
        ))
        stats = sim.step()
        assert stats["newton_converged"]
        assert stats["dt"] > 0
        assert np.abs(sim.u).max() > 0
        # markers are tracked: both lithologies still present
        assert set(np.unique(sim.points.lithology)) == {0, 1}

    def test_marker_eta_matches_analytic_field(self):
        """Marker-projected viscosity approximates the analytic sampling."""
        cfg = SinkerConfig(shape=(4, 4, 4), n_spheres=2, radius=0.2,
                           delta_eta=1e2, points_per_dim=3)
        sim = make_sinker(cfg)
        eta_q, _, rho_q = sim.quadrature_fields(sim.u, sim.p)
        assert eta_q.min() >= 1.0 / cfg.delta_eta - 1e-12
        assert eta_q.max() <= 1.0 + 1e-12
        assert rho_q.max() <= 1.2 + 1e-12


class TestRifting:
    def test_materials(self):
        mats = rifting_materials()
        assert [m.name for m in mats] == ["mantle", "weak crust", "strong crust"]
        # crusts carry plasticity, the mantle does not
        assert mats[0].rheology.plastic is None
        assert mats[1].rheology.plastic is not None

    def test_setup_lithology_layers(self):
        cfg = RiftingConfig(shape=(6, 4, 2))
        sim = make_rifting(cfg)
        z = sim.points.x[:, 2]
        assert np.all(sim.points.lithology[z < 0.7] == 0)
        assert np.all(sim.points.lithology[z > 0.95] == 2)

    def test_damage_seed_in_crust_only(self):
        cfg = RiftingConfig(shape=(6, 4, 2))
        sim = make_rifting(cfg)
        damaged = sim.points.plastic_strain > 0
        assert damaged.any()
        assert np.all(sim.points.x[damaged, 2] >= cfg.mantle_top)
        # concentrated near the back face
        assert sim.points.x[damaged, 1].min() > cfg.extent[1] - cfg.damage_depth_from_back - 1e-9

    def test_two_steps_converge_and_subside(self):
        cfg = RiftingConfig(shape=(6, 4, 2), mg_levels=1)
        sim = make_rifting(cfg)
        s1 = sim.step()
        s2 = sim.step()
        assert s1["newton_converged"] and s2["newton_converged"]
        assert s2["newton_iterations"] <= s1["newton_iterations"]
        assert s1["yielded_fraction"] > 0.02  # plasticity active
        # extension thins the domain: surface drops on average
        topo = sim.mesh.coords[:, 2].max()
        assert topo <= 1.0 + 1e-9

    def test_temperature_stays_bounded(self):
        cfg = RiftingConfig(shape=(6, 4, 2), mg_levels=1)
        sim = make_rifting(cfg)
        sim.step()
        assert sim.T.min() >= -1e-6
        assert sim.T.max() <= 1.0 + 1e-6


class TestTimeLoopPlumbing:
    def test_cfl_dt(self):
        cfg = SinkerConfig(shape=(4, 4, 4), n_spheres=2, radius=0.15,
                           delta_eta=1e2)
        sim = make_sinker(cfg)
        sim.solve_stokes_nonlinear()
        dt = sim.stable_dt()
        h_min = 0.25
        assert dt == pytest.approx(
            sim.config.cfl * h_min / np.abs(sim.u).max()
        )

    def test_run_collects_stats(self):
        cfg = SinkerConfig(shape=(4, 4, 4), n_spheres=1, radius=0.2,
                           delta_eta=10.0)
        sim = make_sinker(cfg, SimulationConfig(
            stokes=StokesConfig(mg_levels=2, coarse_solver="lu"),
            max_newton=2,
        ))
        stats = sim.run(2)
        assert len(stats) == 2
        assert len(sim.log.newton_per_step) == 2
        assert sim.step_index == 2
        assert sim.time > 0

    def test_thermal_requires_T0(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        from repro.rheology import Material
        from repro.mpm import seed_points
        from repro.sim.sinker import free_slip_bc

        with pytest.raises(ValueError):
            Simulation(mesh, [Material.simple("m", 1.0, 1.0)],
                       seed_points(mesh, 2), free_slip_bc,
                       SimulationConfig(thermal_kappa=0.1))
