"""Coupled Stokes: operator structure, hydrostatics, manufactured solutions."""

import numpy as np
import pytest

from repro.fem import StructuredMesh, GaussQuadrature
from repro.stokes import (
    StokesConfig,
    StokesOperator,
    StokesProblem,
    eta_at_quadrature,
    solve_stokes,
    split_uy_p,
)

from tests.conftest import free_slip_bc, no_slip_bc

QUAD = GaussQuadrature.hex(3)


def ones_fields(mesh):
    shape = (mesh.nel, QUAD.npoints)
    return np.ones(shape), np.ones(shape)


class TestOperatorStructure:
    def test_coupled_apply_symmetric(self, rng):
        mesh = StructuredMesh((3, 2, 2), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, bc_builder=no_slip_bc)
        op = StokesOperator(pb)
        x = rng.standard_normal(pb.ndof)
        y = rng.standard_normal(pb.ndof)
        assert op(x) @ y == pytest.approx(op(y) @ x, rel=1e-9)

    def test_bc_rows_identity(self, rng):
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, bc_builder=no_slip_bc)
        op = StokesOperator(pb)
        x = rng.standard_normal(pb.ndof)
        y = op(x)
        assert np.allclose(y[: pb.nu][pb.bc.mask], x[: pb.nu][pb.bc.mask])

    def test_rhs_satisfies_bc(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, bc_builder=free_slip_bc)
        op = StokesOperator(pb)
        b = op.rhs()
        assert np.allclose(b[: pb.nu][pb.bc.mask], 0.0)

    def test_split_uy_p(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        r = np.zeros(3 * mesh.nnodes + 4 * mesh.nel)
        r[2] = 3.0  # a w-component entry
        r[3 * mesh.nnodes] = 4.0  # a pressure entry
        ru, ruz, rp = split_uy_p(mesh, r)
        assert ru == pytest.approx(3.0)
        assert ruz == pytest.approx(3.0)
        assert rp == pytest.approx(4.0)


class TestHydrostatics:
    def test_still_fluid_linear_pressure(self):
        """Constant density with a free surface: u = 0 and p = rho g depth.
        This pins the sign conventions of the entire discretization."""
        mesh = StructuredMesh((4, 4, 4), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, gravity=(0, 0, -9.8),
                           bc_builder=free_slip_bc)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            rtol=1e-9))
        assert sol.converged
        assert np.abs(sol.u).max() < 1e-7
        cent, _ = mesh.element_centroids_and_extents()
        p0 = sol.p[0::4]
        assert np.abs(p0 - 9.8 * (1.0 - cent[:, 2])).max() < 1e-6

    def test_dense_blob_sinks(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        blob = lambda x: np.linalg.norm(x - 0.5, axis=-1) < 0.25
        eta = eta_at_quadrature(mesh, lambda x: np.where(blob(x), 10.0, 1.0), QUAD)
        rho = eta_at_quadrature(mesh, lambda x: np.where(blob(x), 1.2, 1.0), QUAD)
        pb = StokesProblem(mesh, eta, rho, gravity=(0, 0, -9.8),
                           bc_builder=free_slip_bc)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu"))
        assert sol.converged
        center = mesh.node_index(4, 4, 4)
        assert sol.u[3 * center + 2] < 0  # sinks

    def test_velocity_divergence_free(self):
        """The locally conservative Q2-P1disc element gives element-wise
        zero divergence (constant mode rows of B u vanish)."""
        mesh = StructuredMesh((4, 4, 4), order=2)
        blob = lambda x: np.linalg.norm(x - 0.5, axis=-1) < 0.3
        eta = eta_at_quadrature(mesh, lambda x: np.where(blob(x), 100.0, 1.0), QUAD)
        rho = eta_at_quadrature(mesh, lambda x: np.where(blob(x), 1.5, 1.0), QUAD)
        pb = StokesProblem(mesh, eta, rho, bc_builder=free_slip_bc)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            rtol=1e-9))
        op = StokesOperator(pb)
        div = op.B_int @ sol.u
        # scaled by the velocity magnitude
        assert np.abs(div).max() < 1e-6 * max(np.abs(sol.u).max(), 1)


class TestManufacturedSolution:
    def _solve(self, n):
        """u = curl of a smooth potential (divergence free), Dirichlet BCs
        from the exact solution, f from the strong form with eta = 1."""
        mesh = StructuredMesh((n, n, n), order=2)
        pi = np.pi

        def u_exact(c):
            x, y, z = c[..., 0], c[..., 1], c[..., 2]
            ux = np.sin(pi * x) * np.cos(pi * y) * z
            uy = -np.cos(pi * x) * np.sin(pi * y) * z
            uz = np.zeros_like(x)
            return np.stack([ux, uy, uz], axis=-1)

        def p_exact(c):
            return np.cos(pi * c[..., 0]) * np.cos(pi * c[..., 2])

        def f_body(c):
            # f = -div(2 D(u)) + grad p (so the momentum equation holds
            # with our convention A u + B^T p = F, F = int f.w)
            x, y, z = c[..., 0], c[..., 1], c[..., 2]
            lap_ux = -2 * pi**2 * np.sin(pi * x) * np.cos(pi * y) * z
            lap_uy = 2 * pi**2 * np.cos(pi * x) * np.sin(pi * y) * z
            lap_uz = np.zeros_like(x)
            # div u = 0 => div(2 D(u)) = lap u
            gpx = -pi * np.sin(pi * x) * np.cos(pi * z)
            gpz = -pi * np.cos(pi * x) * np.sin(pi * z)
            fx = -lap_ux + gpx
            fy = -lap_uy
            fz = -lap_uz + gpz
            return np.stack([fx, fy, fz], axis=-1)

        from repro.fem.bc import DirichletBC, boundary_nodes, component_dofs

        def bc_builder(m):
            bc = DirichletBC(3 * m.nnodes)
            ue = u_exact(m.coords)
            for face in ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax"):
                nodes = boundary_nodes(m, face)
                for c in range(3):
                    bc.add(component_dofs(nodes, c), ue[nodes, c])
            return bc.finalize()

        eta = np.ones((mesh.nel, QUAD.npoints))
        rho = np.zeros((mesh.nel, QUAD.npoints))
        pb = StokesProblem(mesh, eta, rho, gravity=(0, 0, 0), bc_builder=bc_builder)
        op = StokesOperator(pb)
        # rhs from the manufactured body force: F_a = int f . phi_a
        _, det, xq = mesh.geometry_at(QUAD)
        N = mesh.basis.eval(QUAD.points)
        fq = f_body(xq)
        fe = np.einsum("nq,qa,nqc->nac", det * QUAD.weights[None], N, fq)
        Fu = np.zeros(3 * mesh.nnodes)
        conn = mesh.connectivity
        edofs = 3 * conn[:, :, None] + np.arange(3)[None, None, :]
        np.add.at(Fu, edofs.ravel(), fe.ravel())
        g = np.zeros(pb.nu)
        g[pb.bc.dofs] = pb.bc.values
        Fu = Fu - op.A_op.apply(g)
        Fu[pb.bc.dofs] = pb.bc.values
        Fp = -op.B @ g
        b = np.concatenate([Fu, Fp])
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            rtol=1e-10, maxiter=600,
                                            project_pressure_nullspace=True),
                           rhs=b)
        assert sol.converged
        ue = u_exact(mesh.coords)
        err_u = np.abs(sol.u.reshape(-1, 3) - ue).max()
        # compare element-mean pressure (shift-invariant); use the RMS over
        # elements -- max-norm pressure at coarse resolutions is dominated
        # by corner elements and converges preasymptotically
        cent, _ = mesh.element_centroids_and_extents()
        pe = p_exact(cent)
        p0 = sol.p[0::4]
        diff = (p0 - p0.mean()) - (pe - pe.mean())
        err_p = float(np.sqrt(np.mean(diff**2)))
        return err_u, err_p

    def test_convergence_orders(self):
        eu2, ep2 = self._solve(2)
        eu4, ep4 = self._solve(4)
        rate_u = np.log2(eu2 / eu4)
        rate_p = np.log2(ep2 / ep4)
        assert rate_u > 2.3, f"velocity rate {rate_u:.2f} ({eu2:.2e} -> {eu4:.2e})"
        assert rate_p > 1.3, f"pressure rate {rate_p:.2f} ({ep2:.2e} -> {ep4:.2e})"


class TestSolverPlumbing:
    def test_requires_bc_builder(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        eta, rho = ones_fields(mesh)
        bc = free_slip_bc(mesh)
        pb = StokesProblem(mesh, eta, rho, bc=bc)
        with pytest.raises(ValueError):
            solve_stokes(pb)

    def test_fgmres_outer(self):
        mesh = StructuredMesh((4, 4, 4), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, bc_builder=free_slip_bc)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            outer="fgmres"))
        assert sol.converged

    def test_monitor_wired_through(self):
        from repro.diagnostics import FieldSplitMonitor

        mesh = StructuredMesh((4, 4, 4), order=2)
        eta, rho = ones_fields(mesh)
        pb = StokesProblem(mesh, eta, rho, bc_builder=free_slip_bc)
        mon = FieldSplitMonitor(mesh)
        solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu"),
                     monitor=mon)
        assert len(mon.total) >= 2
        assert not np.isnan(mon.pressure).any()
