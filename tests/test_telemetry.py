"""Run telemetry: metric time-series, run manifest, flight recorder,
progress line, machine resolution, and the cross-run compare gate."""

import copy
import json
import os
import pathlib
import time
from io import StringIO

import numpy as np
import pytest

from repro import SimulationConfig, obs
from repro.fem import GaussQuadrature, StructuredMesh
from repro.matfree import make_operator
from repro.obs import compare as obs_compare
from repro.obs import flight, metrics
from repro.perf import LAPTOP, MACHINES, MachineModel, resolve_machine
from repro.stokes.solve import StokesConfig

QUAD = GaussQuadrature.hex(3)


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_MACHINE", raising=False)
    monkeypatch.delenv("REPRO_FLIGHT", raising=False)
    monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
    obs.disable()
    obs.reset()
    flight.disarm()
    yield
    obs.disable()
    obs.reset()
    flight.disarm()


# --------------------------------------------------------------------- #
# metric instruments
# --------------------------------------------------------------------- #
class TestInstruments:
    def test_disabled_appenders_are_noops(self):
        metrics.inc("k", 5)
        metrics.gauge("g", 1.0)
        metrics.observe("h", 2.0)
        assert metrics.commit_step(0) == {}
        assert metrics.export()["series"] == []
        assert metrics.export()["last_step"] is None

    def test_counter_is_cumulative(self):
        obs.enable()
        metrics.inc("krylov")
        metrics.inc("krylov", 3)
        metrics.commit_step(0)
        metrics.inc("krylov", 2)
        row = metrics.commit_step(1)
        assert row["krylov"] == 6.0
        (s,) = [s for s in metrics.export()["series"] if s["name"] == "krylov"]
        assert s["kind"] == "counter"
        assert s["steps"] == [0, 1]
        assert s["values"] == [4.0, 6.0]

    def test_gauge_is_last_write_wins(self):
        obs.enable()
        metrics.gauge("dt", 0.1)
        metrics.gauge("dt", 0.05)
        row = metrics.commit_step(0)
        assert row["dt"] == 0.05
        assert metrics.get_gauge("dt") == 0.05
        assert metrics.get_gauge("missing", -1.0) == -1.0

    def test_histogram_summary(self):
        obs.enable()
        for v in (1.0, 3.0, 2.0):
            metrics.observe("step_seconds", v)
        row = metrics.commit_step(0)
        assert row["step_seconds.count"] == 3
        assert row["step_seconds.sum"] == 6.0
        assert row["step_seconds.min"] == 1.0
        assert row["step_seconds.max"] == 3.0
        names = {s["name"] for s in metrics.export()["series"]}
        assert {"step_seconds.count", "step_seconds.sum",
                "step_seconds.min", "step_seconds.max"} <= names

    def test_reset_clears_instruments(self):
        obs.enable()
        metrics.inc("k")
        metrics.commit_step(0)
        obs.reset()
        assert metrics.export()["series"] == []
        assert metrics.get_gauge("k") is None


# --------------------------------------------------------------------- #
# run manifest + machine resolution
# --------------------------------------------------------------------- #
class TestManifest:
    def test_defaults(self):
        man = metrics.build_manifest()
        assert man["schema"] == metrics.MANIFEST_SCHEMA
        assert man["machine_model"] == "laptop"
        assert man["machine"]["name"] == "laptop"
        assert "numpy" in man["packages"]
        assert man["config_hash"] is None and man["seed"] is None

    def test_overrides_survive_disabled_profiling(self):
        assert not obs.enabled()
        metrics.set_manifest(config_hash="abc", seed=42, custom="x")
        man = metrics.build_manifest()
        assert man["config_hash"] == "abc"
        assert man["seed"] == 42
        assert man["custom"] == "x"

    def test_machine_model_override(self):
        metrics.set_manifest(machine_model="edison")
        assert metrics.build_manifest()["machine_model"] == "edison"

    def test_repro_env_is_captured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert metrics.build_manifest()["env"]["REPRO_WORKERS"] == "2"

    def test_config_hash_is_stable_and_discriminates(self):
        a = metrics.config_hash(StokesConfig(mg_levels=2))
        b = metrics.config_hash(StokesConfig(mg_levels=2))
        c = metrics.config_hash(StokesConfig(mg_levels=3))
        assert a == b != c
        assert len(a) == 16

    def test_config_hash_handles_nested_config(self):
        h = metrics.config_hash(SimulationConfig(stokes=StokesConfig()))
        assert isinstance(h, str) and len(h) == 16


class TestMachineResolution:
    def test_default_is_laptop(self):
        assert resolve_machine(None) is LAPTOP

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE", "edison")
        assert resolve_machine(None).name == "edison"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE", "edison")
        assert resolve_machine("laptop") is LAPTOP

    def test_case_insensitive_and_passthrough(self):
        assert resolve_machine("EDISON").name == "edison"
        m = MACHINES["edison"]
        assert resolve_machine(m) is m

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine("cray-1")

    def test_log_view_records_machine_in_manifest(self):
        obs.enable()
        with obs.timed("ev"):
            pass
        obs.log_view(stream=StringIO(), machine="edison")
        assert metrics.build_manifest()["machine_model"] == "edison"

    def test_as_dict_round_trips_json(self):
        d = LAPTOP.as_dict()
        assert json.loads(json.dumps(d)) == d
        assert isinstance(resolve_machine(None), MachineModel)


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_disarmed_is_noop(self):
        flight.record_step({"step": 0})
        assert flight.trigger("manual") is None
        assert flight.armed() is None

    def test_ring_buffer_evicts_oldest(self, tmp_path):
        rec = flight.arm(capacity=3, directory=tmp_path)
        for i in range(5):
            flight.record_step({"step": i})
        assert [s["step"] for s in rec.steps] == [2, 3, 4]

    def test_trigger_dumps_validated_document(self, tmp_path):
        obs.enable()
        rec = flight.arm(capacity=4, directory=tmp_path)
        metrics.gauge("dt", 0.1)
        row = metrics.commit_step(0)
        flight.record_step({"step": 0, "metrics": row})
        path = flight.trigger("rollback", step=0, reason="diverged")
        assert path in rec.dumps
        assert os.path.basename(path) == "FLIGHT_rollback_001.json"
        with open(path) as fh:
            doc = flight.validate_flight(json.load(fh))
        assert doc["trigger"] == {"kind": "rollback", "step": 0,
                                  "reason": "diverged"}
        assert doc["steps"][0]["metrics"]["dt"] == 0.1
        assert doc["manifest"]["machine_model"] == "laptop"

    def test_dump_indices_increment(self, tmp_path):
        rec = flight.arm(capacity=2, directory=tmp_path)
        rec.record_step({"step": 0})
        p1 = flight.trigger("manual")
        p2 = flight.trigger("breakdown")
        assert p1.endswith("FLIGHT_manual_001.json")
        assert p2.endswith("FLIGHT_breakdown_002.json")
        assert rec.dumps == [p1, p2]

    def test_numpy_records_are_jsonable(self, tmp_path):
        flight.arm(capacity=2, directory=tmp_path)
        flight.record_step({"step": 0,
                            "stats": {"fnorm": np.float64(1e-9),
                                      "ok": np.bool_(True),
                                      "res": np.arange(3)}})
        path = flight.trigger("manual")
        with open(path) as fh:
            step = json.load(fh)["steps"][0]
        assert step["stats"] == {"fnorm": 1e-9, "ok": True, "res": [0, 1, 2]}

    def test_arm_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "0")
        assert flight.maybe_arm_from_env() is None
        monkeypatch.setenv("REPRO_FLIGHT", "8")
        assert flight.maybe_arm_from_env().capacity == 8
        flight.disarm()
        monkeypatch.setenv("REPRO_FLIGHT", "yes")
        assert flight.maybe_arm_from_env().capacity == 32

    def test_arm_from_env_keeps_existing_recorder(self, monkeypatch):
        rec = flight.arm(capacity=5)
        monkeypatch.setenv("REPRO_FLIGHT", "16")
        assert flight.maybe_arm_from_env() is rec

    def test_reset_clears_buffer_but_stays_armed(self, tmp_path):
        rec = flight.arm(capacity=4, directory=tmp_path)
        flight.record_step({"step": 0})
        obs.reset()
        assert flight.armed() is rec
        assert len(rec.steps) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            flight.FlightRecorder(capacity=0)

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(schema="bogus/9"), "schema"),
        (lambda d: d.pop("manifest"), "missing top-level key"),
        (lambda d: d.update(steps=[{"no_step": 1}]), "int 'step'"),
        (lambda d: d.update(steps=[{"step": i} for i in range(9)]),
         "more buffered steps than capacity"),
    ])
    def test_validate_flight_rejects(self, tmp_path, mutate, match):
        rec = flight.arm(capacity=2, directory=tmp_path)
        rec.record_step({"step": 0})
        doc = rec.document("manual")
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            flight.validate_flight(doc)


class TestProgressLine:
    @pytest.fixture(autouse=True)
    def no_live_executors(self):
        # executors register in a WeakSet of stats sources and drop out
        # only when collected; exception tracebacks from earlier tests
        # can pin one in a reference cycle until a gc pass runs, which
        # would make the workers column appear in these renders
        import gc

        gc.collect()

    def test_renders_step_dt_and_residual_gauge(self):
        obs.enable()
        metrics.gauge("snes_last_fnorm", 3.2e-7)
        out = StringIO()  # StringIO.isatty() is False: the non-TTY path
        line = obs.ProgressLine(stream=out)
        text = line.update(4, 0.25, 1e-3)
        assert "step 4" in text and "dt 1.00e-03" in text
        assert "|F| 3.20e-07" in text and "steps/s" in text
        assert "\r" not in out.getvalue()
        assert out.getvalue().endswith("\n")
        line.close()

    def test_tty_stream_gets_carriage_return_rewrites(self):
        class FakeTty(StringIO):
            def isatty(self):
                return True

        out = FakeTty()
        line = obs.ProgressLine(stream=out)
        line.update(1, 0.0, 1e-3)
        line.update(2, 0.1, 1e-3)
        assert out.getvalue().count("\r") == 2
        assert "\n" not in out.getvalue()
        line.close()
        assert out.getvalue().endswith("\n")

    def test_non_tty_stream_writes_interval_lines(self):
        out = StringIO()
        line = obs.ProgressLine(stream=out, interval=5)
        for step in range(1, 13):
            line.update(step, 0.1 * step, 1e-3)
        line.close()
        text = out.getvalue()
        assert "\r" not in text
        lines = [l for l in text.splitlines() if l]
        # first update plus every 5th (counts 5 and 10)
        assert len(lines) == 3
        assert "step 1" in lines[0]
        assert "step 5" in lines[1] and "step 10" in lines[2]
        assert not text.endswith("\n\n")  # close() adds nothing off-TTY

    def test_explicit_residual_and_no_worker_column(self):
        line = obs.ProgressLine(stream=StringIO())
        text = line.update(0, 0.0, 0.1, residual=1e-2)
        assert "|F| 1.00e-02" in text
        assert "workers" not in text  # no live executor

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, _):
                raise BrokenPipeError
            def flush(self):
                raise BrokenPipeError

        line = obs.ProgressLine(stream=Broken())
        line.update(0, 0.0, 0.1)
        line.close()

    def test_progress_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert not flight.progress_enabled()
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert flight.progress_enabled()
        monkeypatch.setenv("REPRO_PROGRESS", "false")
        assert not flight.progress_enabled()


# --------------------------------------------------------------------- #
# document schema: metrics + manifest ride in repro.obs/1
# --------------------------------------------------------------------- #
class TestDocumentSchema:
    def test_snapshot_carries_metrics_and_manifest(self):
        obs.enable()
        metrics.inc("k")
        metrics.commit_step(0)
        doc = obs.validate(obs.snapshot())
        assert doc["metrics"]["series"][0]["name"] == "k"
        assert doc["manifest"]["schema"] == metrics.MANIFEST_SCHEMA

    def test_pre_telemetry_documents_still_validate(self):
        doc = obs.snapshot()
        doc.pop("metrics")
        doc.pop("manifest")
        obs.validate(doc)  # optional keys: back-compat with old exports

    def test_malformed_series_rejected(self):
        doc = obs.snapshot()
        doc["metrics"]["series"] = [{"name": "x", "kind": "gauge",
                                     "steps": [0, 1], "values": [1.0]}]
        with pytest.raises(ValueError, match="steps/values"):
            obs.validate(doc)

    def test_write_json_accepts_pathlike(self, tmp_path):
        obs.enable()
        with obs.timed("ev"):
            pass
        path = tmp_path / "trace.json"         # a pathlib.Path, not a str
        assert isinstance(path, pathlib.Path)
        obs.write_json(path, meta={"case": "pathlike"})
        doc = obs_compare.load_document(path)
        assert doc["meta"]["case"] == "pathlike"
        assert doc["manifest"]["machine_model"] == "laptop"


# --------------------------------------------------------------------- #
# cross-run compare gate
# --------------------------------------------------------------------- #
def tiny_document(sleep=0.03, ksp_iters=4, steps=2):
    """A real, validated document from a synthetic instrumented 'run'."""
    obs.reset()
    obs.enable()
    for step in range(steps):
        with obs.stage("TimeStep"):
            with obs.timed("StokesSolve"):
                time.sleep(sleep)
            obs.trace_ksp("fgmres", 0, 1.0)
            for i in range(1, ksp_iters + 1):
                obs.trace_ksp("fgmres", i, 10.0 ** -i)
        metrics.gauge("dt", 0.1)
        metrics.commit_step(step)
    doc = obs.validate(obs.snapshot())
    obs.disable()
    obs.reset()
    return doc


def slow_copy(doc, factor=2.0):
    """A candidate with every event wall time scaled by ``factor``."""
    out = copy.deepcopy(doc)
    for ev in out["events"]:
        ev["seconds"] *= factor
        ev["self_seconds"] *= factor
        if ev["gflops_per_s"]:
            ev["gflops_per_s"] /= factor
    return out


class TestCompare:
    @pytest.fixture(scope="class")
    def base_doc(self):
        return tiny_document()

    def test_identical_documents_pass(self, base_doc):
        result = obs_compare.compare(base_doc, copy.deepcopy(base_doc))
        assert result.passed and result.findings
        assert "PASS" in obs_compare.render(result)

    def test_synthetic_2x_slowdown_fails(self, base_doc):
        result = obs_compare.compare(base_doc, slow_copy(base_doc, 2.0))
        assert not result.passed
        names = {f.name for f in result.regressions}
        assert "total_self_seconds" in names
        assert any(f.name.endswith("StokesSolve") for f in result.regressions)
        (tot,) = [f for f in result.regressions
                  if f.name == "total_self_seconds"]
        assert tot.ratio == pytest.approx(2.0)
        assert "FAIL" in obs_compare.render(result)

    def test_threshold_is_configurable(self, base_doc):
        cand = slow_copy(base_doc, 2.0)
        assert obs_compare.compare(base_doc, cand, max_slowdown=3.0).passed

    def test_iteration_growth_is_gated_separately(self, base_doc):
        cand = tiny_document(ksp_iters=8)
        result = obs_compare.compare(base_doc, cand, max_slowdown=1e9)
        bad = {f.name for f in result.regressions}
        assert bad == {"ksp_iterations"}

    def test_step_count_mismatch_flagged(self, base_doc):
        result = obs_compare.compare(base_doc, tiny_document(steps=1),
                                     max_slowdown=1e9, max_iter_growth=1e9)
        assert {f.name for f in result.regressions} == {"time_steps"}

    def test_min_seconds_skips_noise_events(self, base_doc):
        cand = slow_copy(base_doc, 100.0)
        result = obs_compare.compare(base_doc, cand, min_seconds=1e9)
        assert not any(f.kind in ("event", "total") for f in result.findings)

    def test_iterations_fall_back_to_traces(self, base_doc):
        b = copy.deepcopy(base_doc)
        c = copy.deepcopy(base_doc)
        for d in (b, c):
            d["metrics"]["series"] = []   # pre-metrics document
        for rec in c["traces"]["ksp"]:
            rec["iteration"] *= 2         # looks like twice the iterations
        result = obs_compare.compare(b, c, max_slowdown=1e9)
        assert result.passed  # same *count* of nonzero iterations
        assert any(f.name == "ksp_iterations" for f in result.findings)

    def test_as_dict_round_trips(self, base_doc):
        d = obs_compare.compare(base_doc, base_doc).as_dict()
        assert d["schema"] == "repro.obs.compare/1"
        assert json.loads(json.dumps(d)) == d


class TestCompareCLI:
    @pytest.fixture()
    def docs_on_disk(self, tmp_path):
        base = tiny_document()
        paths = {}
        for name, doc in (("base", base),
                          ("same", copy.deepcopy(base)),
                          ("slow", slow_copy(base, 2.0))):
            p = tmp_path / f"{name}.json"
            p.write_text(json.dumps(doc))
            paths[name] = str(p)
        return paths

    def test_exit_codes(self, docs_on_disk, capsys):
        d = docs_on_disk
        assert obs_compare.main([d["base"], d["same"]]) == 0
        assert obs_compare.main([d["base"], d["slow"]]) == 1
        assert obs_compare.main([d["base"], d["slow"], "--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "warn-only" in out

    def test_bad_input_exits_2(self, docs_on_disk, tmp_path, capsys):
        assert obs_compare.main([docs_on_disk["base"],
                                 str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"nope\"}")
        assert obs_compare.main([docs_on_disk["base"], str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_diff_artifact(self, docs_on_disk, tmp_path, capsys):
        out = tmp_path / "diff.json"
        code = obs_compare.main([docs_on_disk["base"], docs_on_disk["slow"],
                                 "--json", str(out)])
        assert code == 1
        diff = json.loads(out.read_text())
        assert diff["passed"] is False
        assert any(f["regression"] for f in diff["findings"])
        capsys.readouterr()


# --------------------------------------------------------------------- #
# telemetry under parallelism (ISSUE satellite: bit-identical export
# round-trip with REPRO_WORKERS=2 on both backends, executor stats in)
# --------------------------------------------------------------------- #
class TestTelemetryUnderParallelism:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_export_round_trips_with_executor_stats(self, tmp_path,
                                                    monkeypatch, backend):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        rng = np.random.default_rng(3)
        mesh = StructuredMesh((3, 3, 4), order=2)
        eta = np.exp(rng.normal(scale=0.5, size=(mesh.nel, QUAD.npoints)))
        obs.enable()
        op = make_operator("tensor", mesh, eta, quad=QUAD,
                           parallel_backend=backend)  # workers from env
        try:
            with obs.stage("TimeStep"):
                y = op.apply(rng.standard_normal(3 * mesh.nnodes))
            assert np.isfinite(y).all()
            metrics.commit_step(0)
            doc = obs.validate(obs.snapshot())
        finally:
            op.executor.shutdown()

        # ExecutorStats aggregated into the document
        ex = doc["metrics"]["executors"]
        assert ex["dispatches"] >= 1 and ex["tasks"] >= 2
        assert ex["worker_busy_seconds"] > 0.0
        gauges = {s["name"] for s in doc["metrics"]["series"]}
        assert {"executor.dispatches", "executor.tasks",
                "executor.workers"} <= gauges
        assert doc["manifest"]["env"]["REPRO_WORKERS"] == "2"

        # export -> serialize -> parse -> serialize is bit-identical
        first = json.dumps(doc, sort_keys=True)
        second = json.dumps(json.loads(first), sort_keys=True)
        assert first == second

        # and the on-disk document equals the in-memory snapshot
        path = tmp_path / f"par_{backend}.json"
        obs.write_json(path)
        loaded = obs_compare.load_document(path)
        for key in ("metrics", "events", "stages", "traces"):
            assert json.dumps(loaded[key], sort_keys=True) == \
                json.dumps(json.loads(json.dumps(doc[key])), sort_keys=True)

    def test_weakset_drops_dead_executors(self):
        from repro.parallel import ParallelExecutor

        before = metrics.total_workers()
        ex = ParallelExecutor(workers=2, backend="thread")
        assert metrics.total_workers() == before + 2
        ex.shutdown()
        del ex
        import gc
        gc.collect()
        assert metrics.total_workers() == before
