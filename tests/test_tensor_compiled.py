"""Compiled blocked tensor kernel: equivalence, determinism, fallback.

Mirrors the ``tests/test_parallel_executor.py`` style: every parallel
claim is ``rtol=0`` (bitwise) because the executor reduces span partials
in task order and the C kernel accumulates elements strictly in index
order; cross-backend claims (different arithmetic) use tight ``allclose``.
"""

import numpy as np
import pytest

from repro.fem import StructuredMesh, GaussQuadrature
from repro.matfree import make_operator
from repro.matfree import _ckernel
from repro.matfree.tensor_c import (
    PACKED_VALUES, build_packed_coefficients, unpack_sym,
)
from repro.matfree.tensor_compiled import default_block_elements

QUAD = GaussQuadrature.hex(3)
BACKENDS = ["thread", "process"]


def small_setup(shape=(3, 3, 4), seed=11):
    rng = np.random.default_rng(seed)
    mesh = StructuredMesh(shape, order=2, extent=(1.0, 0.8, 1.2))
    mesh.deform(lambda c: c + 0.02 * np.sin(2 * np.pi * c[:, [1, 2, 0]]))
    eta = np.exp(rng.normal(scale=0.5, size=(mesh.nel, QUAD.npoints)))
    u = rng.standard_normal(3 * mesh.nnodes)
    return mesh, eta, u


class TestPackedStorage:
    def test_packed_values_is_16(self):
        # 6 (symmetric S) + 9 (K) + 1 (w eta): the ~5x cut vs dense 81
        assert PACKED_VALUES == 16
        assert 81 / PACKED_VALUES > 4.0

    def test_pack_roundtrip_matches_dense_rank4(self):
        """The packed apply must contract exactly like the dense tensor
        C_cdef = w eta (delta_ce M_df + K_de K_fc), M = K K^T."""
        rng = np.random.default_rng(0)
        Jinv = rng.standard_normal((5, 27, 3, 3))
        weta = np.abs(rng.standard_normal((5, 27))) + 0.1
        g = rng.standard_normal((5, 27, 3, 3))
        packed = build_packed_coefficients(Jinv, weta)
        assert packed.shape == (5, 27, PACKED_VALUES)
        S = unpack_sym(packed)
        K = packed[..., 6:15].reshape(5, 27, 3, 3)
        w = packed[..., 15]
        t_packed = np.einsum("nqce,nqed->nqcd", g, S)
        t_packed += w[..., None, None] * np.einsum(
            "nqde,nqef,nqfc->nqdc", K, g, K
        ).transpose(0, 1, 3, 2)
        M = np.einsum("nqde,nqfe->nqdf", Jinv, Jinv)
        C = weta[..., None, None, None, None] * (
            np.einsum("ce,nqdf->nqcdef", np.eye(3), M)
            + np.einsum("nqde,nqfc->nqcdef", Jinv, Jinv)
        )
        t_dense = np.einsum("nqcdef,nqef->nqcd", C, g)
        assert np.allclose(t_packed, t_dense, rtol=1e-13, atol=1e-13)
        # major symmetry C_cdef = C_efcd: the operator stays symmetric
        assert np.allclose(C, C.transpose(0, 1, 4, 5, 2, 3))


class TestEquivalence:
    """tensor_compiled vs tensor_c vs tensor, across chunk/block sizes."""

    @pytest.mark.parametrize("chunk", [3, 17, 4096])
    def test_matches_einsum_backends(self, chunk):
        mesh, eta, u = small_setup()
        y_t = make_operator("tensor", mesh, eta, quad=QUAD, chunk=chunk)(u)
        y_c = make_operator("tensor_c", mesh, eta, quad=QUAD, chunk=chunk)(u)
        y_x = make_operator(
            "tensor_compiled", mesh, eta, quad=QUAD, chunk=chunk
        )(u)
        scale = np.abs(y_t).max()
        assert np.abs(y_c - y_t).max() < 1e-13 * scale
        assert np.abs(y_x - y_t).max() < 1e-13 * scale

    def test_block_size_is_bit_invariant(self):
        """The L2 tile never reorders the element loop, so every block
        size produces the identical floats (rtol=0)."""
        mesh, eta, u = small_setup()
        ys = [
            make_operator(
                "tensor_compiled", mesh, eta, quad=QUAD, block=b
            ).apply(u)
            for b in (1, 2, 7, 64, 10**6)
        ]
        for y in ys[1:]:
            assert np.array_equal(ys[0], y)

    def test_chunk_size_does_not_change_compiled_result(self):
        # the C path ignores _sub_chunks entirely; chunk only shapes the
        # NumPy fallback, so results must be chunk-independent bitwise
        mesh, eta, u = small_setup()
        y1 = make_operator("tensor_compiled", mesh, eta, quad=QUAD, chunk=4)(u)
        y2 = make_operator("tensor_compiled", mesh, eta, quad=QUAD)(u)
        assert np.array_equal(y1, y2)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial_exactly(self, backend, workers):
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor_compiled", mesh, eta, quad=QUAD, workers=workers,
            parallel_backend=backend,
        )
        assert np.array_equal(op.apply(u), op.apply_serial(u))
        op.executor.shutdown()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_run_eta_update_parallel(self, backend):
        """In-place viscosity mutation between applies: coefficients must
        rebuild and workers re-snapshot (the headline bugfix) for the
        compiled backend too."""
        mesh, eta, u = small_setup()
        op = make_operator(
            "tensor_compiled", mesh, eta.copy(), quad=QUAD, workers=2,
            parallel_backend=backend,
        )
        op.apply(u)
        op.eta_q *= 3.0
        y_par = op.apply(u)
        assert np.array_equal(y_par, op.apply_serial(u))
        # same span structure (workers=2) so the reference is bit-comparable
        ref_op = make_operator(
            "tensor_compiled", mesh, eta * 3.0, quad=QUAD, workers=2,
            parallel_backend=backend,
        )
        assert np.array_equal(y_par, ref_op.apply_serial(u))
        ref_op.executor.shutdown()
        op.executor.shutdown()

    def test_mesh_deform_rebuilds(self):
        mesh, eta, u = small_setup()
        op = make_operator("tensor_compiled", mesh, eta, quad=QUAD)
        op.apply(u)
        mesh.deform(lambda c: c * 1.2)
        ref = make_operator("tensor", mesh, eta, quad=QUAD).apply(u)
        assert np.allclose(op.apply(u), ref, rtol=1e-12, atol=1e-12)


class TestFallback:
    def test_kill_switch_forces_numpy_path(self, monkeypatch):
        monkeypatch.setenv(_ckernel.ENV_DISABLE, "1")
        _ckernel._reset_for_tests()
        try:
            mesh, eta, u = small_setup()
            op = make_operator("tensor_compiled", mesh, eta, quad=QUAD)
            assert not op.compiled
            assert _ckernel.ENV_DISABLE in op.fallback_reason
            # the fallback is the inherited packed path: identical floats
            ref = make_operator("tensor_c", mesh, eta, quad=QUAD)
            assert np.array_equal(op.apply(u), ref.apply(u))
        finally:
            _ckernel._reset_for_tests()

    def test_compile_failure_degrades_gracefully(self, monkeypatch, tmp_path):
        monkeypatch.setenv(_ckernel.ENV_CACHE, str(tmp_path))
        monkeypatch.setattr(_ckernel, "_COMPILERS", ("definitely-not-a-cc",))
        _ckernel._reset_for_tests()
        try:
            assert not _ckernel.available()
            assert "compile failed" in _ckernel.unavailable_reason()
            mesh, eta, u = small_setup(shape=(2, 2, 2))
            op = make_operator("tensor_compiled", mesh, eta, quad=QUAD)
            assert not op.compiled
            assert np.isfinite(op.apply(u)).all()
        finally:
            _ckernel._reset_for_tests()

    def test_block_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKERNEL_BLOCK", "13")
        assert default_block_elements() == 13
        monkeypatch.delenv("REPRO_CKERNEL_BLOCK")
        assert default_block_elements(l2_bytes=1 << 21) >= 32


class TestDiagnostics:
    def test_nullspace_and_symmetry(self):
        from repro.mg.sa import rigid_body_modes

        mesh, eta, u = small_setup()
        op = make_operator("tensor_compiled", mesh, eta, quad=QUAD)
        rng = np.random.default_rng(3)
        v = rng.standard_normal(u.size)
        assert op(u) @ v == pytest.approx(op(v) @ u, rel=1e-10)
        B = rigid_body_modes(mesh.coords)
        for j in range(6):
            assert np.abs(op(B[:, j])).max() < 1e-9

    def test_counts_registered(self):
        from repro.perf.counts import OPERATOR_COUNTS

        c = OPERATOR_COUNTS["tensor_compiled"]
        assert c.flops == OPERATOR_COUNTS["tensor_c"].flops

    def test_gmg_fine_level_accepts_compiled_kind(self):
        from repro.fem import DirichletBC, boundary_nodes, component_dofs
        from repro.mg.gmg import GMGConfig, build_gmg

        rng = np.random.default_rng(5)
        meshes = StructuredMesh((4, 4, 4), order=2).hierarchy(2)[::-1]
        etas = [np.ones((m.nel, 27)) for m in meshes]

        def bc_builder(m):
            bc = DirichletBC(3 * m.nnodes)
            for face, comp in (("xmin", 0), ("xmax", 0), ("ymin", 1),
                               ("ymax", 1), ("zmin", 2)):
                bc.add(component_dofs(boundary_nodes(m, face), comp), 0.0)
            return bc.finalize()

        cfg = GMGConfig(levels=2, fine_operator="tensor_compiled",
                        coarse_solver="lu", fused_residual=True)
        mg, _ = build_gmg(meshes, etas, bc_builder, cfg)
        b = rng.standard_normal(3 * meshes[0].nnodes)
        b[mg.levels[0].bc_mask] = 0.0
        x = mg(b)
        r = b - mg.levels[0].apply(x)
        assert np.linalg.norm(r) < 0.5 * np.linalg.norm(b)
