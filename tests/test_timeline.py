"""Timeline tracing: span capture, per-worker merge, Chrome trace export,
critical-path/utilization/imbalance analysis, report/compare surfacing."""

import gc
import json

import numpy as np
import pytest

from repro import SimulationConfig, obs
from repro.obs import compare as obs_compare
from repro.obs import metrics
from repro.obs import timeline as tl
from repro.parallel.executor import ParallelExecutor
from repro.stokes.solve import StokesConfig


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_TIMELINE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
    obs.disable()
    obs.reset()
    tl.disarm()
    yield
    obs.disable()
    obs.reset()
    tl.disarm()
    # executors register in a WeakSet of live stats sources; collect any
    # cyclic sim graphs now so later tests see no phantom live executor
    gc.collect()


def span(name="E", cat="event", stage="", t0=0.0, t1=1.0, rank=-1,
         pid=1, tid=1, flops=0, nbytes=0, dispatch=-1):
    return {"name": name, "cat": cat, "stage": stage, "t0": t0, "t1": t1,
            "rank": rank, "pid": pid, "tid": tid, "flops": flops,
            "bytes": nbytes, "dispatch": dispatch}


# --------------------------------------------------------------------- #
# ring buffer + arming semantics
# --------------------------------------------------------------------- #
class TestRingBuffer:
    def test_capacity_bounds_each_rank(self):
        t = tl.Timeline(capacity=4)
        for i in range(6):
            t._push(0, ("e", "event", "", float(i), float(i) + 0.5,
                        0, 1, 1, 0, 0, -1))
        assert len(t.buffers[0]) == 4
        assert t.dropped[0] == 2
        assert t.recorded == 6
        # oldest spans evicted: the survivors are the last four
        assert [s[3] for s in t.buffers[0]] == [2.0, 3.0, 4.0, 5.0]

    def test_rings_are_per_rank(self):
        t = tl.Timeline(capacity=2)
        for rank in (0, 1):
            for i in range(3):
                t._push(rank, ("e", "task", "", float(i), float(i) + 1,
                               rank, 1, 1, 0, 0, 0))
        assert len(t.buffers[0]) == 2 and len(t.buffers[1]) == 2
        assert t.dropped == {0: 1, 1: 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            tl.Timeline(capacity=0)

    def test_clear_resets_but_stays_armed(self):
        t = tl.arm(capacity=8)
        t._push(0, ("e", "event", "", 0.0, 1.0, 0, 1, 1, 0, 0, -1))
        t.note_dispatch([1.0, 2.0])
        obs.reset()  # the registry reset hook clears the armed timeline
        assert tl.armed() is t
        assert t.recorded == 0 and t.buffers == {} and t.dispatches == 0

    def test_env_arming(self, monkeypatch):
        assert tl.maybe_arm_from_env() is None
        monkeypatch.setenv("REPRO_TIMELINE", "0")
        assert tl.maybe_arm_from_env() is None
        monkeypatch.setenv("REPRO_TIMELINE", "false")
        assert tl.maybe_arm_from_env() is None
        monkeypatch.setenv("REPRO_TIMELINE", "1")
        t = tl.maybe_arm_from_env()
        assert t is not None
        assert t.capacity == tl.DEFAULT_CAPACITY  # "1" is on, not capacity 1
        tl.disarm()
        monkeypatch.setenv("REPRO_TIMELINE", "512")
        assert tl.maybe_arm_from_env().capacity == 512
        # idempotent while armed: the same timeline comes back
        assert tl.maybe_arm_from_env() is tl.armed()


# --------------------------------------------------------------------- #
# registry sink: timed/stage context managers emit spans while armed
# --------------------------------------------------------------------- #
class TestSpanCapture:
    def test_event_and_stage_spans(self):
        t = tl.arm()
        obs.enable()
        with obs.stage("TimeStep"):
            with obs.timed("MatMult", flops=100, nbytes=800):
                pass
        spans = t.spans()
        names = {(s["name"], s["cat"]) for s in spans}
        assert names == {("MatMult", "event"), ("TimeStep", "stage")}
        ev = next(s for s in spans if s["cat"] == "event")
        st = next(s for s in spans if s["cat"] == "stage")
        assert ev["stage"] == "TimeStep" and st["stage"] == "TimeStep"
        assert ev["flops"] == 100 and ev["bytes"] == 800
        assert ev["rank"] == tl.MAIN_RANK
        # the event nests inside its stage on the time axis
        assert st["t0"] <= ev["t0"] <= ev["t1"] <= st["t1"]

    def test_disarmed_captures_nothing(self):
        obs.enable()
        with obs.timed("MatMult"):
            pass
        assert tl.armed() is None
        t = tl.arm()
        assert t.recorded == 0

    def test_profiling_disabled_captures_nothing(self):
        t = tl.arm()
        with obs.timed("MatMult"):  # no-op: obs disabled
            pass
        assert t.recorded == 0

    def test_worker_scope_labels_rank(self):
        t = tl.arm()
        obs.enable()
        with t.worker(3, 7):
            with obs.timed("Kernel"):
                pass
        (s,) = t.spans()
        assert s["rank"] == 3 and s["dispatch"] == 7
        # scope restored: subsequent spans are main-rank again
        with obs.timed("After"):
            pass
        after = next(x for x in t.spans() if x["name"] == "After")
        assert after["rank"] == tl.MAIN_RANK


# --------------------------------------------------------------------- #
# export document + chrome trace + validation + CLI
# --------------------------------------------------------------------- #
class TestExport:
    def _armed_run(self):
        t = tl.arm()
        obs.enable()
        with obs.stage("TimeStep"):
            with obs.timed("MatMult", flops=10):
                pass
        return t

    def test_export_section_validates(self):
        t = self._armed_run()
        sec = t.export()
        assert tl.validate_timeline(sec) is sec
        assert sec["schema"] == tl.TIMELINE_SCHEMA
        assert sec["recorded"] == 2 and sec["dropped"] == 0
        assert [s["t0"] for s in sec["spans"]] == sorted(
            s["t0"] for s in sec["spans"])

    def test_snapshot_carries_section_only_while_armed(self):
        self._armed_run()
        doc = obs.validate(obs.snapshot())
        assert doc["timeline"]["spans"]
        tl.disarm()
        assert "timeline" not in obs.snapshot()

    def test_validate_rejects_bad_sections(self):
        sec = self._armed_run().export()
        bad = dict(sec, schema="repro.obs.timeline/999")
        with pytest.raises(ValueError, match="schema"):
            tl.validate_timeline(bad)
        bad = dict(sec, spans=[span(t0=2.0, t1=1.0)])
        with pytest.raises(ValueError, match="t1 < t0"):
            tl.validate_timeline(bad)
        bad = dict(sec, spans=[{"name": "x"}])
        with pytest.raises(ValueError, match="missing field"):
            tl.validate_timeline(bad)
        bad = dict(sec)
        del bad["analysis"]
        with pytest.raises(ValueError, match="analysis"):
            tl.validate_timeline(bad)

    def test_chrome_trace_structure(self):
        spans = [
            span("Main", "stage", "S", 0.0, 10.0, rank=-1, tid=11),
            span("ParExecTask:apply", "task", "", 2.0, 6.0, rank=0,
                 tid=22, dispatch=0),
            span("ParExecTask:apply", "task", "", 2.0, 4.0, rank=1,
                 tid=33, dispatch=0),
            span("Kernel", "event", "S", 2.5, 3.0, rank=1, tid=33,
                 flops=50, dispatch=0),
        ]
        sec = {"schema": tl.TIMELINE_SCHEMA, "clock": "perf_counter",
               "capacity": 16, "recorded": 4, "dropped": 0,
               "spans": spans, "analysis": tl.analyze(spans)}
        doc = tl.validate_chrome_trace(tl.chrome_trace(sec))
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        xs = [e for e in evs if e["ph"] == "X"]
        # one process_name per rank, ranks mapped to distinct pids
        assert {m["args"]["name"] for m in meta} == {
            "main", "worker 0", "worker 1"}
        assert {e["pid"] for e in xs} == {0, 1, 2}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
        kernel = next(e for e in xs if e["name"] == "Kernel")
        assert kernel["args"]["flops"] == 50
        assert kernel["args"]["dispatch"] == 0
        assert doc["displayTimeUnit"] == "ms"

    def test_validate_chrome_trace_rejects_garbage(self):
        with pytest.raises(ValueError):
            tl.validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            tl.validate_chrome_trace(
                {"traceEvents": [{"ph": "Q", "name": "x", "pid": 0,
                                  "tid": 0}]})
        with pytest.raises(ValueError):
            tl.validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                                  "tid": 0, "ts": -1, "dur": 0}]})

    def test_write_chrome_trace_requires_armed_or_section(self, tmp_path):
        with pytest.raises(RuntimeError, match="not armed"):
            tl.write_chrome_trace(tmp_path / "t.json")
        self._armed_run()
        out = tmp_path / "t.json"
        doc = tl.write_chrome_trace(out)
        with open(out) as fh:
            assert json.load(fh) == doc

    def test_cli_roundtrip(self, tmp_path, capsys):
        self._armed_run()
        run = tmp_path / "run.json"
        obs.write_json(run)
        trace = tmp_path / "trace.json"
        assert tl.main([str(run), "--out", str(trace)]) == 0
        text = capsys.readouterr().out
        assert "serial fraction" in text and "perfetto" in text.lower()
        with open(trace) as fh:
            tl.validate_chrome_trace(json.load(fh))
        # a bare timeline section is accepted too
        bare = tmp_path / "bare.json"
        with open(run) as fh:
            bare.write_text(json.dumps(json.load(fh)["timeline"]))
        assert tl.main([str(bare)]) == 0

    def test_cli_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert tl.main([str(missing)]) == 2
        no_section = tmp_path / "plain.json"
        obs.enable()
        obs.write_json(no_section)
        assert tl.main([str(no_section)]) == 2
        assert "no timeline section" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# analysis math on a hand-built timeline
# --------------------------------------------------------------------- #
class TestAnalysis:
    def hand_built(self):
        return [
            span("TimeStep", "stage", "TimeStep", 0.0, 10.0, rank=-1),
            span("ParExecTask:a", "task", "", 2.0, 6.0, rank=0, dispatch=0),
            span("ParExecTask:a", "task", "", 2.0, 4.0, rank=1, dispatch=0),
            span("ParExecTask:a", "task", "", 7.0, 8.0, rank=0, dispatch=1),
            span("ParExecTask:a", "task", "", 7.0, 9.5, rank=1, dispatch=1),
        ]

    def test_critical_path_and_utilization(self):
        an = tl.analyze(self.hand_built())
        assert an["wall_seconds"] == pytest.approx(10.0)
        cp = an["critical_path"]
        # workers active over [2,6] u [7,9.5] = 6.5 s parallel
        assert cp["parallel_seconds"] == pytest.approx(6.5)
        assert cp["serial_seconds"] == pytest.approx(3.5)
        assert cp["serial_fraction"] == pytest.approx(0.35)
        workers = {w["rank"]: w for w in an["workers"]}
        assert workers[0]["busy_seconds"] == pytest.approx(5.0)
        assert workers[0]["utilization"] == pytest.approx(0.5)
        assert workers[1]["busy_seconds"] == pytest.approx(4.5)
        assert workers[-1]["busy_seconds"] == pytest.approx(10.0)

    def test_dispatch_imbalance_and_stragglers(self):
        disp = tl.analyze(self.hand_built())["dispatches"]
        assert disp["count"] == 2
        # d0: durs (4,2) -> 4/3; d1: durs (1,2.5) -> 2.5/1.75
        assert disp["mean_imbalance"] == pytest.approx(
            (4 / 3 + 2.5 / 1.75) / 2)
        assert disp["max_imbalance"] == pytest.approx(2.5 / 1.75)
        assert disp["stragglers"] == {"0": 1, "1": 1}

    def test_per_step_split(self):
        (step,) = tl.analyze(self.hand_built())["steps"]
        assert step["seconds"] == pytest.approx(10.0)
        assert step["parallel_seconds"] == pytest.approx(6.5)
        assert step["serial_fraction"] == pytest.approx(0.35)

    def test_overlapping_spans_do_not_double_count(self):
        spans = [
            span("A", "event", "", 0.0, 4.0, rank=0),
            span("B", "event", "", 2.0, 6.0, rank=0),  # overlaps A
        ]
        an = tl.analyze(spans)
        (w,) = an["workers"]
        assert w["busy_seconds"] == pytest.approx(6.0)  # union, not sum
        assert an["critical_path"]["parallel_seconds"] == pytest.approx(6.0)

    def test_empty_timeline(self):
        an = tl.analyze([])
        assert an["wall_seconds"] == 0.0
        assert an["critical_path"]["serial_fraction"] == 1.0
        assert an["workers"] == [] and an["steps"] == []

    def test_note_dispatch_accumulators(self):
        t = tl.Timeline()
        t.note_dispatch([1.0, 3.0])        # max/mean = 3/2: imb 1.5
        t.note_dispatch([2.0, 2.0])        # imb 1.0
        t.note_dispatch([])                # counted, no stats
        assert t.dispatches == 3
        assert t.imbalance_max == pytest.approx(1.5)
        assert t.imbalance_last == pytest.approx(1.0)
        assert t.mean_imbalance == pytest.approx(2.5 / 3)
        assert t.stragglers == {1: 1, 0: 1}


# --------------------------------------------------------------------- #
# executor integration: merged per-worker spans, both backends
# --------------------------------------------------------------------- #
class _SumState:
    def apply(self, u, s, e):
        out = np.zeros(4)
        out[:] = u[s:e].sum()
        return out


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestExecutorSpans:
    def test_task_spans_carry_distinct_ranks(self, backend):
        t = tl.arm()
        obs.enable()
        ex = ParallelExecutor(workers=2, backend=backend)
        u = np.arange(8, dtype=float)
        spans = [(0, 4), (4, 8)]
        try:
            r = ex.dispatch(_SumState(), "apply", spans, u, out_len=4)
            assert np.array_equal(
                r, ex.run_serial(_SumState(), "apply", spans, u,
                                 [4, 4], "sum"))
        finally:
            ex.shutdown()
        sec = tl.validate_timeline(t.export())
        tasks = [s for s in sec["spans"] if s["cat"] == "task"]
        assert sorted(s["rank"] for s in tasks) == [0, 1]
        assert all(s["name"] == "ParExecTask:apply" for s in tasks)
        assert all(s["dispatch"] == 0 for s in tasks)
        assert t.dispatches == 1 and t.imbalance_last > 0
        assert set(t.task_busy) == {0, 1}
        doc = tl.validate_chrome_trace(tl.chrome_trace(sec))
        pids = {e["pid"] for e in doc["traceEvents"] if e.get("cat") == "task"}
        assert pids == {1, 2}  # distinct worker ranks -> distinct tracks

    def test_env_workers_two(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", backend)
        t = tl.arm()
        obs.enable()
        ex = ParallelExecutor()
        assert ex.workers == 2 and ex.backend == backend
        try:
            ex.dispatch(_SumState(), "apply", [(0, 4), (4, 8)],
                        np.arange(8, dtype=float), out_len=4)
        finally:
            ex.shutdown()
        ranks = {s["rank"] for s in t.spans() if s["cat"] == "task"}
        assert ranks == {0, 1}

    def test_disarmed_dispatch_unchanged(self, backend):
        obs.enable()
        ex = ParallelExecutor(workers=2, backend=backend)
        u = np.arange(8, dtype=float)
        try:
            r = ex.dispatch(_SumState(), "apply", [(0, 4), (4, 8)], u,
                            out_len=4)
        finally:
            ex.shutdown()
        assert np.array_equal(
            r, ex.run_serial(_SumState(), "apply", [(0, 4), (4, 8)], u,
                             [4, 4], "sum"))
        assert tl.armed() is None


class TestProcessSpanSpool:
    def test_remote_task_capture_rebases_to_master_origin(self):
        t = tl.arm()
        obs.enable()
        result, spans = tl.remote_task_capture(
            lambda: 42, "apply", 1, 3, t.origin)
        assert result == 42
        task = spans[-1]
        assert task[0] == "ParExecTask:apply" and task[1] == "task"
        assert task[5] == 1 and task[10] == 3
        assert 0 <= task[3] <= task[4]
        t.ingest(spans)
        assert t.task_busy[1] == pytest.approx(task[4] - task[3])
        (merged,) = [s for s in t.spans() if s["cat"] == "task"]
        assert merged["rank"] == 1

    def test_capture_without_armed_timeline_still_ships_task_span(self):
        result, spans = tl.remote_task_capture(
            lambda: "ok", "apply", 0, 0, 0.0)
        assert result == "ok"
        assert len(spans) == 1 and spans[0][1] == "task"


# --------------------------------------------------------------------- #
# simulation-level: bit-identical results + merged timeline, 2 workers
# --------------------------------------------------------------------- #
def _run_sinker(backend, arm_timeline=False):
    from repro.sim.sinker import SinkerConfig, make_sinker

    obs.reset()
    obs.enable()
    if arm_timeline:
        tl.arm()
    sim = make_sinker(
        SinkerConfig(shape=(4, 4, 4)),
        SimulationConfig(
            stokes=StokesConfig(mg_levels=2, coarse_solver="lu",
                                workers=2, parallel_backend=backend),
        ),
    )
    sim.run(2)
    doc = obs.validate(obs.snapshot())
    u, p = sim.u.copy(), sim.p.copy()
    tl.disarm()
    obs.disable()
    return u, p, doc


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_sinker_two_workers_bit_identical_with_timeline(backend):
    # the serial reference runs the identical two-slab task structure
    # inline (the executor determinism contract), so equality is bitwise
    u1, p1, _ = _run_sinker(backend="serial")
    u2, p2, doc = _run_sinker(backend=backend, arm_timeline=True)
    assert np.array_equal(u1, u2)
    assert np.array_equal(p1, p2)
    sec = doc["timeline"]
    tl.validate_timeline(sec)
    task_ranks = {s["rank"] for s in sec["spans"] if s["cat"] == "task"}
    assert task_ranks == {0, 1}, "spans must carry distinct worker ranks"
    an = sec["analysis"]
    assert an["dispatches"]["count"] > 0
    assert an["dispatches"]["max_imbalance"] >= 1.0
    assert {w["rank"] for w in an["workers"]} >= {0, 1}
    assert an["critical_path"]["parallel_seconds"] > 0
    assert an["steps"], "TimeStep stage spans must be analyzed per step"
    doc2 = tl.validate_chrome_trace(tl.chrome_trace(sec))
    pids = {e["pid"] for e in doc2["traceEvents"] if e.get("cat") == "task"}
    assert pids == {1, 2}


# --------------------------------------------------------------------- #
# metrics gauges + report tail + compare gate
# --------------------------------------------------------------------- #
class TestSurfacing:
    def test_commit_metrics_gauges(self):
        t = tl.arm()
        obs.enable()
        with obs.timed("E"):
            pass
        t.record_task("apply", 0, 0, t.origin, t.origin + 0.5)
        t.note_dispatch([0.5, 0.1])
        tl.commit_metrics()
        row = metrics.commit_step(0)
        assert row["timeline.spans"] == 2.0
        assert row["timeline.dispatches"] == 1.0
        assert row["timeline.imbalance_max"] == pytest.approx(0.5 / 0.3)
        assert "timeline.worker_utilization_min" in row
        assert "timeline.worker_utilization_mean" in row

    def test_commit_metrics_noop_disarmed(self):
        obs.enable()
        tl.commit_metrics()
        assert metrics.commit_step(0) == {}

    def test_report_tail_lists_workers(self):
        t = tl.arm()
        obs.enable()
        with obs.timed("E"):
            pass
        t.record_task("apply", 0, 0, t.origin, t.origin + 0.4)
        t.record_task("apply", 1, 0, t.origin, t.origin + 0.2)
        t.note_dispatch([0.4, 0.2])
        text = obs.log_view(stream=False)
        assert "timeline:" in text
        assert "imbalance max" in text
        assert "worker  0" in text and "worker  1" in text
        assert "straggler in 1 dispatch(es)" in text

    def test_report_has_no_tail_when_disarmed(self):
        obs.enable()
        with obs.timed("E"):
            pass
        assert "timeline:" not in obs.log_view(stream=False)

    def _doc_with_imbalance(self, imb):
        spans = [
            span("ParExecTask:a", "task", "", 0.0, imb, rank=0, dispatch=0),
            span("ParExecTask:a", "task", "", 0.0, 2.0 - imb, rank=1,
                 dispatch=0),
        ]
        obs.enable()
        doc = obs.snapshot()
        doc["timeline"] = {
            "schema": tl.TIMELINE_SCHEMA, "clock": "perf_counter",
            "capacity": 16, "recorded": 2, "dropped": 0, "spans": spans,
            "analysis": tl.analyze(spans),
        }
        return obs.validate(doc)

    def test_compare_reports_imbalance_informational(self):
        base = self._doc_with_imbalance(1.0)   # balanced: imb 1.0
        cand = self._doc_with_imbalance(1.8)   # imb 1.8/1.0
        res = obs_compare.compare(base, cand)
        (f,) = [x for x in res.findings
                if x.name == "dispatch_imbalance_max"]
        assert f.kind == "timeline" and not f.regression
        assert f.candidate == pytest.approx(1.8)
        utils = [x for x in res.findings if "utilization" in x.name]
        assert {x.name for x in utils} == {"worker0_utilization",
                                           "worker1_utilization"}
        assert res.passed

    def test_compare_max_imbalance_gate(self):
        base = self._doc_with_imbalance(1.0)
        cand = self._doc_with_imbalance(1.8)
        res = obs_compare.compare(base, cand, max_imbalance=1.5)
        (f,) = res.regressions
        assert f.name == "dispatch_imbalance_max"
        assert "max-imbalance" in f.note
        ok = obs_compare.compare(base, cand, max_imbalance=2.5)
        assert ok.passed
        # rendered output shows the timeline rows without --verbose
        text = obs_compare.render(res)
        assert "dispatch_imbalance_max" in text and "REGRESSION" in text

    def test_compare_cli_flag(self, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        with open(base, "w") as fh:
            json.dump(self._doc_with_imbalance(1.0), fh)
        obs.reset()
        with open(cand, "w") as fh:
            json.dump(self._doc_with_imbalance(1.8), fh)
        assert obs_compare.main(
            [str(base), str(cand), "--max-imbalance", "1.5"]) == 1
        assert obs_compare.main(
            [str(base), str(cand), "--max-imbalance", "2.5"]) == 0
        assert obs_compare.main([str(base), str(cand)]) == 0
