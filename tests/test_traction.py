"""Neumann (traction) boundary terms: the surface integral of Eq. 10."""

import numpy as np
import pytest

from repro.fem import GaussQuadrature, StructuredMesh, assembly
from repro.stokes import StokesConfig, StokesProblem, solve_stokes

from tests.conftest import no_slip_bc

QUAD = GaussQuadrature.hex(3)


class TestTractionAssembly:
    def test_total_force_equals_traction_times_area(self):
        mesh = StructuredMesh((3, 3, 3), order=2, extent=(2.0, 1.0, 1.0))
        F = assembly.rhs_traction(mesh, "zmax", (0.0, 0.0, -3.0))
        # partition of unity: nodal forces sum to t * area (2 x 1)
        assert F[2::3].sum() == pytest.approx(-6.0, rel=1e-12)
        assert abs(F[0::3].sum()) < 1e-12

    def test_only_face_nodes_loaded(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        F = assembly.rhs_traction(mesh, "xmin", (1.0, 0.0, 0.0))
        loaded = np.flatnonzero(F[0::3])
        assert np.allclose(mesh.coords[loaded, 0], 0.0)

    def test_callable_traction(self):
        mesh = StructuredMesh((4, 4, 1), order=2)
        # linear shear profile t_x = x on the top face
        F = assembly.rhs_traction(mesh, "zmax",
                                  lambda x: np.stack(
                                      [x[..., 0], np.zeros_like(x[..., 0]),
                                       np.zeros_like(x[..., 0])], axis=-1))
        # total = int_0^1 int_0^1 x dA = 1/2
        assert F[0::3].sum() == pytest.approx(0.5, rel=1e-12)

    def test_deformed_face_area(self):
        """The isoparametric surface Jacobian sees the ALE-deformed face."""
        mesh = StructuredMesh((4, 4, 2), order=2)
        flat = assembly.rhs_traction(mesh, "zmax", (0.0, 0.0, 1.0))
        # bulge the top surface: area increases
        coords = mesh.coords.copy()
        top = np.abs(coords[:, 2] - 1.0) < 1e-12
        coords[top, 2] += 0.2 * np.sin(np.pi * coords[top, 0]) * np.sin(
            np.pi * coords[top, 1]
        )
        mesh.set_coords(coords)
        bumped = assembly.rhs_traction(mesh, "zmax", (0.0, 0.0, 1.0))
        assert bumped[2::3].sum() > flat[2::3].sum() * 1.01

    def test_unknown_face(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        with pytest.raises(ValueError):
            assembly.rhs_traction(mesh, "front", (1.0, 0.0, 0.0))


class TestTractionDrivenFlow:
    def test_shear_traction_drives_flow(self):
        """A tangential traction on the free top surface of a closed box
        drives a net flow in the traction direction (a wind-stress-style
        problem using Eq. 10's boundary term)."""
        from repro.fem.bc import DirichletBC, boundary_nodes, component_dofs

        mesh = StructuredMesh((4, 4, 4), order=2)

        def bc_builder(m):
            bc = DirichletBC(3 * m.nnodes)
            for face, comp in (("xmin", 0), ("xmax", 0), ("ymin", 1),
                               ("ymax", 1), ("zmin", 2)):
                bc.add(component_dofs(boundary_nodes(m, face), comp), 0.0)
            return bc.finalize()

        shape = (mesh.nel, QUAD.npoints)
        pb = StokesProblem(mesh, np.ones(shape), np.zeros(shape),
                           gravity=(0, 0, 0), bc_builder=bc_builder)
        from repro.stokes import StokesOperator

        op = StokesOperator(pb)
        Ft = assembly.rhs_traction(mesh, "zmax", (0.5, 0.0, 0.0))
        b = op.rhs()
        b[: pb.nu] += np.where(pb.bc.mask, 0.0, Ft)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            rtol=1e-8), rhs=b)
        assert sol.converged
        # surface velocity follows the traction
        top = np.flatnonzero(np.abs(mesh.coords[:, 2] - 1.0) < 1e-12)
        assert sol.u[3 * top + 0].mean() > 0
