"""Grid transfer: the Q1-embedded prolongation (paper SS III-C)."""

import numpy as np
import pytest

from repro.fem import StructuredMesh
from repro.mg.transfer import (
    q1_interpolation_1d,
    nodal_prolongation,
    vector_prolongation,
)


class Test1D:
    def test_shape(self):
        P = q1_interpolation_1d(5)
        assert P.shape == (9, 5)

    def test_partition_of_unity(self):
        P = q1_interpolation_1d(7)
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_reproduces_linear(self):
        P = q1_interpolation_1d(5)
        xc = np.linspace(0, 1, 5)
        xf = np.linspace(0, 1, 9)
        assert np.allclose(P @ (2 * xc + 1), 2 * xf + 1)

    def test_injection_on_coincident_points(self):
        P = q1_interpolation_1d(4).toarray()
        for i in range(4):
            row = P[2 * i]
            assert row[i] == 1.0 and row.sum() == 1.0


class Test3D:
    def test_shape(self):
        fine = StructuredMesh((4, 4, 4), order=2)
        coarse = fine.coarsen()
        P = nodal_prolongation(fine, coarse)
        assert P.shape == (fine.nnodes, coarse.nnodes)

    def test_rejects_non_nested(self):
        with pytest.raises(ValueError):
            nodal_prolongation(StructuredMesh((4, 4, 4)), StructuredMesh((3, 3, 3)))

    def test_reproduces_trilinear_functions(self):
        fine = StructuredMesh((4, 2, 2), order=2, extent=(2, 1, 1))
        coarse = fine.coarsen()
        P = nodal_prolongation(fine, coarse)
        f = lambda c: 1 + 2 * c[:, 0] - c[:, 1] + 3 * c[:, 2] + c[:, 0] * c[:, 1]
        assert np.allclose(P @ f(coarse.coords), f(fine.coords), atol=1e-13)

    def test_restriction_is_transpose_partition(self):
        """R = P^T: column sums of P give the restriction weights; total
        mass of a restricted delta is 1 (full stencil weight 8x 1/8...)."""
        fine = StructuredMesh((2, 2, 2), order=2)
        coarse = fine.coarsen()
        P = nodal_prolongation(fine, coarse)
        # each fine node's interpolation weights sum to 1
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_vector_prolongation_componentwise(self):
        fine = StructuredMesh((2, 2, 2), order=2)
        coarse = fine.coarsen()
        P = nodal_prolongation(fine, coarse)
        Pv = vector_prolongation(fine, coarse)
        assert Pv.shape == (3 * fine.nnodes, 3 * coarse.nnodes)
        uc = np.random.default_rng(0).standard_normal(coarse.nnodes)
        v = np.zeros(3 * coarse.nnodes)
        v[1::3] = uc
        out = Pv @ v
        assert np.allclose(out[1::3], P @ uc)
        assert np.allclose(out[0::3], 0)
        assert np.allclose(out[2::3], 0)
