"""Analytic verification anchors: Couette, Poiseuille, Stokes sphere."""

import numpy as np
import pytest

from repro.fem import GaussQuadrature, StructuredMesh
from repro.fem.bc import DirichletBC, boundary_nodes, component_dofs
from repro.stokes import StokesConfig, StokesProblem, solve_stokes
from repro.verification import (
    couette_velocity,
    poiseuille_body_force,
    poiseuille_velocity,
    stokes_sphere_velocity,
)

QUAD = GaussQuadrature.hex(3)


def exact_dirichlet_everywhere(u_fn):
    def bc_builder(mesh):
        bc = DirichletBC(3 * mesh.nnodes)
        ue = u_fn(mesh.coords)
        for face in ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax"):
            nodes = boundary_nodes(mesh, face)
            for c in range(3):
                bc.add(component_dofs(nodes, c), ue[nodes, c])
        return bc.finalize()

    return bc_builder


class TestCouette:
    def test_linear_profile_to_machine_precision(self):
        """The lid-driven linear shear profile lies in the Q2 space, so the
        discrete solution matches it to solver tolerance at any resolution."""
        mesh = StructuredMesh((3, 2, 3), order=2)
        shape = (mesh.nel, QUAD.npoints)
        pb = StokesProblem(
            mesh, np.full(shape, 7.0), np.zeros(shape), gravity=(0, 0, 0),
            bc_builder=exact_dirichlet_everywhere(couette_velocity),
        )
        sol = solve_stokes(pb, StokesConfig(mg_levels=1, coarse_solver="lu",
                                            rtol=1e-12,
                                            project_pressure_nullspace=True))
        assert sol.converged
        err = np.abs(sol.u.reshape(-1, 3) - couette_velocity(mesh.coords))
        assert err.max() < 1e-9

    def test_viscosity_independent(self):
        """Constant-shear-stress flow: the velocity field is independent of
        the (constant) viscosity."""
        sols = []
        for eta in (0.1, 100.0):
            mesh = StructuredMesh((2, 2, 2), order=2)
            shape = (mesh.nel, QUAD.npoints)
            pb = StokesProblem(
                mesh, np.full(shape, eta), np.zeros(shape), gravity=(0, 0, 0),
                bc_builder=exact_dirichlet_everywhere(couette_velocity),
            )
            sol = solve_stokes(pb, StokesConfig(mg_levels=1,
                                                coarse_solver="lu",
                                                rtol=1e-12,
                                                project_pressure_nullspace=True))
            sols.append(sol.u)
        assert np.abs(sols[0] - sols[1]).max() < 1e-8


class TestPoiseuille:
    def test_quadratic_profile_to_machine_precision(self):
        """The body-force-driven channel profile is quadratic in z --
        exactly in the Q2 space; the solve reproduces it at 2 elements."""
        f = 3.0
        eta = 2.0
        u_fn = lambda c: poiseuille_velocity(c, f=f, eta=eta)
        mesh = StructuredMesh((3, 2, 2), order=2)
        shape = (mesh.nel, QUAD.npoints)
        pb = StokesProblem(
            mesh, np.full(shape, eta), np.ones(shape),
            gravity=poiseuille_body_force(f),
            bc_builder=exact_dirichlet_everywhere(u_fn),
        )
        sol = solve_stokes(pb, StokesConfig(mg_levels=1, coarse_solver="lu",
                                            rtol=1e-12,
                                            project_pressure_nullspace=True))
        assert sol.converged
        err = np.abs(sol.u.reshape(-1, 3) - u_fn(mesh.coords))
        assert err.max() < 1e-8

    def test_flux_scales_inversely_with_viscosity(self):
        fluxes = {}
        for eta in (1.0, 4.0):
            u_fn = lambda c: poiseuille_velocity(c, f=1.0, eta=eta)
            mesh = StructuredMesh((2, 2, 2), order=2)
            shape = (mesh.nel, QUAD.npoints)
            pb = StokesProblem(
                mesh, np.full(shape, eta), np.ones(shape),
                gravity=poiseuille_body_force(1.0),
                bc_builder=exact_dirichlet_everywhere(u_fn),
            )
            sol = solve_stokes(pb, StokesConfig(mg_levels=1,
                                                coarse_solver="lu",
                                                rtol=1e-12,
                                                project_pressure_nullspace=True))
            fluxes[eta] = sol.u[0::3].mean()
        assert fluxes[1.0] / fluxes[4.0] == pytest.approx(4.0, rel=1e-6)


class TestStokesSphere:
    def test_formula_limits(self):
        rigid = stokes_sphere_velocity(1.0, 10.0, 0.1, 1.0)
        assert rigid == pytest.approx(2 / 9 * 10.0 * 0.01)
        bubble = stokes_sphere_velocity(1.0, 10.0, 0.1, 1.0, eta_sphere=0.0)
        assert bubble == pytest.approx(1.5 * rigid)
        hard = stokes_sphere_velocity(1.0, 10.0, 0.1, 1.0, eta_sphere=1e12)
        assert hard == pytest.approx(rigid, rel=1e-6)

    def test_simulated_sphere_bounded_by_analytic(self):
        """The sinking speed of a single sphere in a closed box is below
        the unbounded Hadamard-Rybczynski velocity (wall drag) but within
        an order of magnitude of it."""
        from repro.sim.sinker import SinkerConfig, sinker_stokes_problem

        eta_amb, eta_sph = 0.01, 1.0
        drho, g, R = 0.2, 9.8, 0.15
        cfg = SinkerConfig(shape=(6, 6, 6), n_spheres=1, radius=R,
                           delta_eta=eta_sph / eta_amb,
                           rho_sphere=1.0 + drho, seed=5)
        pb = sinker_stokes_problem(cfg)
        sol = solve_stokes(pb, StokesConfig(mg_levels=2, coarse_solver="lu",
                                            rtol=1e-7, maxiter=600,
                                            restart=200))
        assert sol.converged
        # sphere sinking speed: most-negative w near the sphere
        v_sim = -sol.u[2::3].min()
        v_hr = stokes_sphere_velocity(drho, g, R, eta_amb, eta_sph)
        assert 0.05 * v_hr < v_sim < 1.2 * v_hr
