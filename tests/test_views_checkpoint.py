"""Local views (DMDA-style gather/scatter), assembled saddle matrix,
checkpointing, stress diagnostics."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem import GaussQuadrature, StructuredMesh
from repro.matfree import make_operator
from repro.parallel import BlockDecomposition, LocalView, rank_local_residual
from repro.sim import (
    SimulationConfig,
    load_checkpoint,
    make_sinker,
    save_checkpoint,
    stress_invariant_at_quadrature,
    stress_invariant_nodal,
)
from repro.sim.sinker import SinkerConfig, sinker_stokes_problem
from repro.stokes import StokesConfig, StokesOperator, solve_stokes

QUAD = GaussQuadrature.hex(3)


class TestLocalView:
    def _decomp(self, shape=(4, 4, 4), ranks=(2, 2, 1)):
        mesh = StructuredMesh(shape, order=2)
        return mesh, BlockDecomposition(mesh, ranks)

    def test_nodes_cover_lattice_once_owned(self):
        mesh, d = self._decomp()
        owned = np.zeros(mesh.nnodes, dtype=int)
        for r in range(d.nranks):
            v = LocalView(d, r)
            owned[v.nodes[v.owned_mask]] += 1
        assert np.all(owned == 1)  # every node owned by exactly one rank

    def test_ghosts_are_shared_nodes(self):
        mesh, d = self._decomp()
        v = LocalView(d, 0)
        assert v.n_ghost > 0
        assert v.n_owned + v.n_ghost == v.nodes.size

    def test_gather_scatter_roundtrip(self, rng):
        mesh, d = self._decomp()
        g = rng.standard_normal(mesh.nnodes)
        out = np.zeros(mesh.nnodes)
        for r in range(d.nranks):
            v = LocalView(d, r)
            local = v.gather(g)
            v.scatter_add(local, out)
        assert np.allclose(out, g)

    def test_vector_gather(self, rng):
        mesh, d = self._decomp()
        g = rng.standard_normal(3 * mesh.nnodes)
        v = LocalView(d, 1)
        loc = v.gather(g, ncomp=3)
        assert loc.shape == (v.nodes.size, 3)
        assert np.allclose(loc, g.reshape(-1, 3)[v.nodes])

    def test_local_connectivity_consistent(self):
        mesh, d = self._decomp()
        v = LocalView(d, 2)
        assert np.array_equal(
            v.nodes[v.local_connectivity],
            mesh.connectivity[v.elements],
        )

    def test_rank_local_residuals_sum_to_global(self, rng):
        """Owner-computes assembly: per-rank operator contributions sum to
        the global apply."""
        mesh, d = self._decomp()
        eta = np.exp(rng.normal(size=(mesh.nel, QUAD.npoints)))
        op = make_operator("tensor", mesh, eta, quad=QUAD)
        u = rng.standard_normal(3 * mesh.nnodes)
        total = np.zeros_like(u)
        for r in range(d.nranks):
            total += rank_local_residual(d, r, op, u)
        assert np.allclose(total, op.apply(u), atol=1e-10)


class TestAssembledSaddle:
    def test_matches_matrix_free_apply(self, rng):
        cfg = SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                           delta_eta=10.0)
        pb = sinker_stokes_problem(cfg)
        op = StokesOperator(pb)
        J = op.assemble()
        x = rng.standard_normal(pb.ndof)
        assert np.allclose(J @ x, op.apply(x), atol=1e-10)

    def test_direct_solve_matches_iterative(self):
        """The fieldsplit-preconditioned GCR solution agrees with a sparse
        direct solve of the assembled saddle system -- the strongest
        correctness anchor for the whole solver stack."""
        cfg = SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                           delta_eta=100.0)
        pb = sinker_stokes_problem(cfg)
        op = StokesOperator(pb)
        J = op.assemble().tocsc()
        x_direct = spla.spsolve(J, op.rhs())
        sol = solve_stokes(pb, StokesConfig(mg_levels=1, coarse_solver="lu",
                                            rtol=1e-10, maxiter=600))
        assert sol.converged
        scale = np.abs(x_direct[: pb.nu]).max()
        assert np.abs(sol.u - x_direct[: pb.nu]).max() < 1e-6 * scale
        pscale = np.abs(x_direct[pb.nu:]).max()
        assert np.abs(sol.p - x_direct[pb.nu:]).max() < 1e-5 * pscale


class TestCheckpoint:
    def _sim(self):
        return make_sinker(
            SinkerConfig(shape=(3, 3, 3), n_spheres=1, radius=0.2,
                         delta_eta=10.0),
            SimulationConfig(stokes=StokesConfig(mg_levels=1,
                                                 coarse_solver="lu"),
                             max_newton=1),
        )

    def test_roundtrip_restores_state(self, tmp_path):
        sim = self._sim()
        sim.step()
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        sim2 = self._sim()
        load_checkpoint(path, sim2)
        assert np.allclose(sim2.u, sim.u)
        assert np.allclose(sim2.p, sim.p)
        assert sim2.time == sim.time
        assert sim2.step_index == sim.step_index
        assert sim2.points.n == sim.points.n
        assert np.allclose(sim2.points.x, sim.points.x)
        assert np.array_equal(sim2.points.lithology, sim.points.lithology)

    def test_restart_continues_identically(self, tmp_path):
        """step; checkpoint; step  ==  restore; step  (bitwise-close)."""
        sim = self._sim()
        sim.step(dt=0.05)
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        sim.step(dt=0.05)
        sim2 = self._sim()
        load_checkpoint(path, sim2)
        sim2.step(dt=0.05)
        assert np.allclose(sim2.u, sim.u, atol=1e-12)
        assert np.allclose(sim2.points.x, sim.points.x, atol=1e-12)

    def test_mesh_shape_validation(self, tmp_path):
        sim = self._sim()
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        other = make_sinker(
            SinkerConfig(shape=(4, 4, 4), n_spheres=1, radius=0.2,
                         delta_eta=10.0),
            SimulationConfig(stokes=StokesConfig(mg_levels=1,
                                                 coarse_solver="lu")),
        )
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_extra_point_fields_roundtrip(self, tmp_path):
        sim = self._sim()
        sim.points.add_field("age", np.arange(float(sim.points.n)))
        path = str(tmp_path / "chk.npz")
        save_checkpoint(path, sim)
        sim2 = self._sim()
        load_checkpoint(path, sim2)
        assert np.array_equal(sim2.points.field("age"),
                              np.arange(float(sim.points.n)))


class TestStressDiagnostics:
    def test_pure_shear_stress(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        u = np.zeros(3 * mesh.nnodes)
        u[0::3] = mesh.coords[:, 1]  # eps_II = 1/2
        eta = np.full((mesh.nel, QUAD.npoints), 3.0)
        tau = stress_invariant_at_quadrature(mesh, u, eta, QUAD)
        assert np.allclose(tau, 2 * 3.0 * 0.5)

    def test_nodal_reconstruction_constant(self):
        mesh = StructuredMesh((2, 2, 2), order=2)
        u = np.zeros(3 * mesh.nnodes)
        u[0::3] = mesh.coords[:, 1]
        eta = np.ones((mesh.nel, QUAD.npoints))
        nodal = stress_invariant_nodal(mesh, u, eta, QUAD)
        assert nodal.shape == (3**3,)
        assert np.allclose(nodal, 1.0, atol=1e-10)
